package gnn_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gnn"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden snapshot fixtures and locked query traces")

const (
	goldenSnapPath        = "testdata/golden_v2.snap"
	goldenShardedSnapPath = "testdata/golden_v2_sharded.snap"
	goldenTracePath       = "testdata/golden_v2_trace.json"
)

// goldenPoints derives the fixture data set from a hand-rolled LCG, so
// the bytes are reproducible on any platform and Go version (math/rand
// would tie the fixture to a generator implementation).
func goldenPoints(n int) []gnn.Point {
	x := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>11) / float64(1<<53) * 1000
	}
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{next(), next()}
	}
	return pts
}

// goldenQueries are the locked query groups.
func goldenQueries() [][]gnn.Point {
	pts := goldenPoints(420) // same stream; slice disjoint ranges as groups
	return [][]gnn.Point{
		pts[400:403],
		pts[403:408],
		pts[408:416],
		{{10, 10}, {990, 990}},
		{{500, 500}, {510, 490}, {495, 505}, {505, 495}},
	}
}

// goldenCases is the locked algorithm grid.
type goldenCase struct {
	Name string `json:"name"`
	Algo string `json:"algo"`
	Agg  string `json:"agg"`
	DF   bool   `json:"depth_first,omitempty"`
	K    int    `json:"k"`
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"mqm_sum_k1", "MQM", "sum", false, 1},
		{"mqm_max_k3", "MQM", "max", false, 3},
		{"spm_sum_k4", "SPM", "sum", false, 4},
		{"mbm_sum_k1", "MBM", "sum", false, 1},
		{"mbm_sum_df_k4", "MBM", "sum", true, 4},
		{"mbm_min_k2", "MBM", "min", false, 2},
		{"brute_sum_k5", "brute", "sum", false, 5},
	}
}

func goldenOptions(c goldenCase) []gnn.QueryOption {
	opts := []gnn.QueryOption{gnn.WithK(c.K)}
	switch c.Algo {
	case "MQM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMQM))
	case "SPM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoSPM))
	case "MBM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMBM))
	case "brute":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoBruteForce))
	}
	switch c.Agg {
	case "max":
		opts = append(opts, gnn.WithAggregate(gnn.MaxDist))
	case "min":
		opts = append(opts, gnn.WithAggregate(gnn.MinDist))
	}
	if c.DF {
		opts = append(opts, gnn.WithDepthFirst())
	}
	return opts
}

// Locked trace schema. Floats are stored as IEEE 754 bit patterns so the
// comparison is exact, not textual.
type goldenResult struct {
	ID    int64    `json:"id"`
	Point []uint64 `json:"point_bits"`
	Dist  uint64   `json:"dist_bits"`
}

type goldenAnswer struct {
	Case    string         `json:"case"`
	Query   int            `json:"query"`
	Results []goldenResult `json:"results"`
	NA      int64          `json:"node_accesses"`
	Logical int64          `json:"logical_accesses"`
}

type goldenTrace struct {
	FormatVersion int            `json:"format_version"`
	Points        int            `json:"points"`
	NodeCapacity  int            `json:"node_capacity"`
	ShardSizes    []int          `json:"shard_sizes"`
	Answers       []goldenAnswer `json:"answers"`
}

func toGoldenResults(rs []gnn.Result) []goldenResult {
	out := make([]goldenResult, len(rs))
	for i, r := range rs {
		g := goldenResult{ID: r.ID, Dist: math.Float64bits(r.Dist), Point: make([]uint64, len(r.Point))}
		for a, v := range r.Point {
			g.Point[a] = math.Float64bits(v)
		}
		out[i] = g
	}
	return out
}

const goldenN, goldenCap, goldenShards = 420, 8, 3

// TestSnapshotGoldenCompat is the format-compatibility gate: it loads
// the checked-in version-2 fixtures and verifies a locked query trace
// bit for bit. If a format change breaks this test, the change is
// incompatible — bump snapshot.Version consciously, regenerate the
// fixtures with `go test -run TestSnapshotGoldenCompat -update .`, and
// say so in the changelog; do NOT just refresh the files to make CI
// green on an unversioned layout change.
func TestSnapshotGoldenCompat(t *testing.T) {
	pts := goldenPoints(goldenN)
	if *updateGolden {
		writeGoldenFixtures(t, pts)
	}

	snapBytes, err := os.ReadFile(goldenSnapPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	ix, err := gnn.OpenSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatalf("golden fixture no longer loads — snapshot format changed without a version bump? %v", err)
	}
	traceBytes, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace goldenTrace
	if err := json.Unmarshal(traceBytes, &trace); err != nil {
		t.Fatal(err)
	}
	if trace.Points != ix.Len() || ix.Len() != goldenN {
		t.Fatalf("fixture holds %d points, trace declares %d, want %d", ix.Len(), trace.Points, goldenN)
	}

	queries := goldenQueries()
	byName := map[string]goldenCase{}
	for _, c := range goldenCases() {
		byName[c.Name] = c
	}
	for _, want := range trace.Answers {
		c, ok := byName[want.Case]
		if !ok {
			t.Fatalf("trace case %q unknown to this build", want.Case)
		}
		res, cost, err := ix.GroupNNWithCost(queries[want.Query], goldenOptions(c)...)
		if err != nil {
			t.Fatalf("%s/q%d: %v", want.Case, want.Query, err)
		}
		got := goldenAnswer{
			Case: want.Case, Query: want.Query,
			Results: toGoldenResults(res),
			NA:      cost.NodeAccesses, Logical: cost.LogicalAccesses,
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s/q%d: locked trace diverged\n got %+v\nwant %+v", want.Case, want.Query, got, want)
		}
	}

	// Canonical bytes: re-writing the loaded index reproduces the fixture.
	var rewritten bytes.Buffer
	if err := ix.WriteSnapshot(&rewritten); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten.Bytes(), snapBytes) {
		t.Error("re-written snapshot differs from the golden bytes (format drift)")
	}

	// Mapped open: the zero-copy path must reproduce the same locked
	// trace — results, NA and logical accesses bit for bit — from the
	// same fixture bytes.
	mx, err := gnn.OpenSnapshotMapped(goldenSnapPath)
	if err != nil {
		t.Fatalf("golden fixture no longer maps: %v", err)
	}
	defer mx.Close()
	for _, want := range trace.Answers {
		c := byName[want.Case]
		res, cost, err := mx.GroupNNWithCost(queries[want.Query], goldenOptions(c)...)
		if err != nil {
			t.Fatalf("mapped %s/q%d: %v", want.Case, want.Query, err)
		}
		got := goldenAnswer{
			Case: want.Case, Query: want.Query,
			Results: toGoldenResults(res),
			NA:      cost.NodeAccesses, Logical: cost.LogicalAccesses,
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mapped %s/q%d: locked trace diverged\n got %+v\nwant %+v", want.Case, want.Query, got, want)
		}
	}

	// Sharded fixture: the partition must survive.
	sx, err := gnn.OpenShardedSnapshotFile(goldenShardedSnapPath)
	if err != nil {
		t.Fatalf("golden sharded fixture no longer loads: %v", err)
	}
	if got := sx.ShardSizes(); !reflect.DeepEqual(got, trace.ShardSizes) {
		t.Fatalf("sharded fixture partition %v, trace locks %v", got, trace.ShardSizes)
	}
	srs, err := sx.GroupNN(queries[4], gnn.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	prs, err := ix.GroupNN(queries[4], gnn.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srs, prs) {
		t.Fatalf("sharded fixture answers diverge from plain: %v vs %v", srs, prs)
	}

	// And the sharded fixture maps too, partition and answers intact.
	smx, err := gnn.OpenShardedSnapshotMapped(goldenShardedSnapPath)
	if err != nil {
		t.Fatalf("golden sharded fixture no longer maps: %v", err)
	}
	defer smx.Close()
	if got := smx.ShardSizes(); !reflect.DeepEqual(got, trace.ShardSizes) {
		t.Fatalf("mapped sharded fixture partition %v, trace locks %v", got, trace.ShardSizes)
	}
	mrs, err := smx.GroupNN(queries[4], gnn.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mrs, prs) {
		t.Fatalf("mapped sharded fixture answers diverge from plain: %v vs %v", mrs, prs)
	}
}

// writeGoldenFixtures regenerates the checked-in fixtures from the
// deterministic point stream.
func writeGoldenFixtures(t *testing.T, pts []gnn.Point) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenSnapPath), 0o755); err != nil {
		t.Fatal(err)
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: goldenCap})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteSnapshotFile(goldenSnapPath); err != nil {
		t.Fatal(err)
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, goldenShards, gnn.IndexConfig{NodeCapacity: goldenCap})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.WriteSnapshotFile(goldenShardedSnapPath); err != nil {
		t.Fatal(err)
	}

	// Lock the trace from a LOADED index, so the fixture records exactly
	// what future loads must reproduce.
	loaded, err := gnn.OpenSnapshotFile(goldenSnapPath)
	if err != nil {
		t.Fatal(err)
	}
	trace := goldenTrace{
		FormatVersion: 2, Points: loaded.Len(), NodeCapacity: goldenCap,
		ShardSizes: sx.ShardSizes(),
	}
	for _, c := range goldenCases() {
		for qi, q := range goldenQueries() {
			res, cost, err := loaded.GroupNNWithCost(q, goldenOptions(c)...)
			if err != nil {
				t.Fatalf("%s/q%d: %v", c.Name, qi, err)
			}
			trace.Answers = append(trace.Answers, goldenAnswer{
				Case: c.Name, Query: qi,
				Results: toGoldenResults(res),
				NA:      cost.NodeAccesses, Logical: cost.LogicalAccesses,
			})
		}
	}
	data, err := json.MarshalIndent(trace, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenTracePath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden fixtures regenerated under testdata/")
}
