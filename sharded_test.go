// Differential suite for the sharded scatter-gather execution: a
// ShardedIndex must return exactly the results of a plain Index over the
// same points — for every algorithm, aggregate, k, layout and scatter
// width — and its reported per-query cost must be exactly the sum of the
// per-shard node accesses (verified against the shard-shared aggregate
// accountant). Run with -race; the concurrent-batch test is written for
// it.
package gnn_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gnn"
)

// clusterPoints generates a deterministic mixed workload: uniform
// background plus dense clusters, the shape that makes sharding
// interesting (queries concentrate, shards prune).
func clusterPoints(rng *rand.Rand, n int, span float64) []gnn.Point {
	pts := make([]gnn.Point, 0, n)
	for len(pts) < n {
		if rng.Intn(3) == 0 { // uniform background
			pts = append(pts, gnn.Point{rng.Float64() * span, rng.Float64() * span})
			continue
		}
		cx, cy := rng.Float64()*span, rng.Float64()*span
		m := 1 + rng.Intn(20)
		for j := 0; j < m && len(pts) < n; j++ {
			pts = append(pts, gnn.Point{cx + rng.NormFloat64()*span/80, cy + rng.NormFloat64()*span/80})
		}
	}
	return pts
}

// queryGroup generates one spatially concentrated query group.
func queryGroup(rng *rand.Rand, n int, span float64) []gnn.Point {
	base := gnn.Point{rng.Float64() * span, rng.Float64() * span}
	qs := make([]gnn.Point, n)
	for i := range qs {
		qs[i] = gnn.Point{base[0] + rng.Float64()*span/8, base[1] + rng.Float64()*span/8}
	}
	return qs
}

// sameResults fails unless two GNN answers are equivalent: bit-identical
// ascending distance sequences, and identical ID sets within every
// interior run of equal distances (executions may order exact ties
// differently). The final run is exempt from the ID check: it is the one
// run k can truncate, where a tie straddling the boundary legitimately
// keeps a different tied representative per execution — the documented
// latitude of both the sharded merge and a single traversal's
// first-come tie-breaking. Distinct distances pin IDs everywhere.
func sameResults(t *testing.T, name string, want, got []gnn.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d\nwant: %v\ngot:  %v", name, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].Dist != got[i].Dist {
			t.Fatalf("%s: distance diverged at rank %d: %v vs %v\nwant: %v\ngot:  %v",
				name, i, want[i].Dist, got[i].Dist, want, got)
		}
	}
	for i := 0; i < len(want); {
		j := i + 1
		for j < len(want) && want[j].Dist == want[i].Dist {
			j++
		}
		if j == len(want) {
			break // boundary run: representatives of an exact tie may differ
		}
		ws, gs := map[int64]bool{}, map[int64]bool{}
		for _, r := range want[i:j] {
			ws[r.ID] = true
		}
		for _, r := range got[i:j] {
			gs[r.ID] = true
		}
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("%s: IDs diverged in the tie run at ranks [%d,%d)\nwant: %v\ngot:  %v",
				name, i, j, want, got)
		}
		i = j
	}
}

// buildBoth builds a plain and a sharded index over the same points.
func buildBoth(t testing.TB, pts []gnn.Point, shards int, cfg gnn.IndexConfig) (*gnn.Index, *gnn.ShardedIndex) {
	t.Helper()
	ix, err := gnn.BuildIndex(pts, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sx.NumShards() != shards || sx.Len() != len(pts) {
		t.Fatalf("sharded index: %d shards over %d points, want %d over %d",
			sx.NumShards(), sx.Len(), shards, len(pts))
	}
	if err := sx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return ix, sx
}

// TestShardedEquivalence is the core differential: identical result sets
// and ordering for S ∈ {1, 2, 7} across every algorithm, aggregate, k,
// both layouts and several scatter widths, plus the cost-sum invariant —
// the reported per-query cost (the sum of per-shard trackers) must equal
// exactly what the shard-shared accountant accrued for the query.
func TestShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusterPoints(rng, 4000, 1000)

	for _, shards := range []int{1, 2, 7} {
		ix, sx := buildBoth(t, pts, shards, gnn.IndexConfig{NodeCapacity: 16})
		sizes := sx.ShardSizes()
		total, min, max := 0, sx.Len(), 0
		for _, n := range sizes {
			total += n
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if total != len(pts) || max-min > 1 {
			t.Fatalf("S=%d: unbalanced partition %v", shards, sizes)
		}

		for trial := 0; trial < 10; trial++ {
			qs := queryGroup(rng, []int{1, 4, 16, 64}[trial%4], 1000)
			k := []int{1, 5, 16}[trial%3]
			var weights []float64
			if trial%3 == 2 {
				weights = make([]float64, len(qs))
				for i := range weights {
					weights[i] = 0.5 + rng.Float64()*3
				}
			}
			for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
				for _, agg := range []gnn.Aggregate{gnn.SumDist, gnn.MaxDist, gnn.MinDist} {
					if algo == gnn.AlgoSPM && agg != gnn.SumDist {
						continue
					}
					for _, layout := range []gnn.Layout{gnn.LayoutPacked, gnn.LayoutDynamic} {
						opts := []gnn.QueryOption{
							gnn.WithK(k), gnn.WithAlgorithm(algo),
							gnn.WithAggregate(agg), gnn.WithLayout(layout),
						}
						if weights != nil {
							opts = append(opts, gnn.WithWeights(weights))
						}
						if trial%4 == 3 {
							opts = append(opts, gnn.WithDepthFirst())
						}
						name := fmt.Sprintf("S=%d/trial%d/%v/%v/%v/k=%d", shards, trial, algo, agg, layout, k)
						want, _, err := ix.GroupNNWithCost(qs, opts...)
						if err != nil {
							t.Fatalf("%s (unsharded): %v", name, err)
						}
						for _, width := range []int{0, 1, 3} {
							wopts := opts
							if width > 0 {
								wopts = append(append([]gnn.QueryOption{}, opts...), gnn.WithShards(width))
							}
							sx.ResetCost()
							got, cost, err := sx.GroupNNWithCost(qs, wopts...)
							if err != nil {
								t.Fatalf("%s (sharded, width=%d): %v", name, width, err)
							}
							sameResults(t, fmt.Sprintf("%s/width=%d", name, width), want, got)
							if agg := sx.Cost(); agg != cost {
								t.Fatalf("%s/width=%d: cost-sum invariant broken: reported %+v, accountant %+v",
									name, width, cost, agg)
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedRegionEquivalence covers the constrained-query extension on
// the sharded path (every algorithm, both effective layouts).
func TestShardedRegionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := clusterPoints(rng, 2500, 800)
	ix, sx := buildBoth(t, pts, 5, gnn.IndexConfig{NodeCapacity: 16})
	for trial := 0; trial < 6; trial++ {
		qs := queryGroup(rng, 8, 800)
		lo := gnn.Point{rng.Float64() * 500, rng.Float64() * 500}
		hi := gnn.Point{lo[0] + 100 + rng.Float64()*300, lo[1] + 100 + rng.Float64()*300}
		for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
			name := fmt.Sprintf("trial%d/%v", trial, algo)
			opts := []gnn.QueryOption{gnn.WithK(4), gnn.WithAlgorithm(algo), gnn.WithRegion(lo, hi)}
			want, err := ix.GroupNN(qs, opts...)
			if err != nil {
				t.Fatalf("%s (unsharded): %v", name, err)
			}
			got, err := sx.GroupNN(qs, opts...)
			if err != nil {
				t.Fatalf("%s (sharded): %v", name, err)
			}
			sameResults(t, name, want, got)
		}
	}
}

// TestShardedIteratorEquivalence steps the sharded k-way-merged stream in
// lockstep with the single-tree incremental scan; every emitted neighbor
// must match, and the iterator's running cost must equal what the
// accountant accrued (the cost-sum invariant for streams).
func TestShardedIteratorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := clusterPoints(rng, 3000, 1000)
	ix, sx := buildBoth(t, pts, 7, gnn.IndexConfig{NodeCapacity: 16})
	for _, agg := range []gnn.Aggregate{gnn.SumDist, gnn.MaxDist, gnn.MinDist} {
		qs := queryGroup(rng, 6, 1000)
		di, err := ix.GroupNNIterator(qs, gnn.WithAggregate(agg))
		if err != nil {
			t.Fatal(err)
		}
		sx.ResetCost()
		si, err := sx.GroupNNIterator(qs, gnn.WithAggregate(agg))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			dr, dok := di.Next()
			sr, sok := si.Next()
			if dok != sok {
				t.Fatalf("agg %v: stream length diverged at %d: %v vs %v", agg, i, dok, sok)
			}
			if !dok {
				break
			}
			// Distances must match rank for rank; IDs may permute only
			// within exact ties (both emissions are valid ascending orders).
			if dr.Dist != sr.Dist {
				t.Fatalf("agg %v: stream diverged at %d:\nunsharded: %+v\nsharded:   %+v", agg, i, dr, sr)
			}
		}
		if agg := sx.Cost(); agg != si.Cost() {
			t.Fatalf("iterator cost-sum invariant broken: reported %+v, accountant %+v", si.Cost(), agg)
		}
		di.Close()
		si.Close()
		if _, ok := si.Next(); ok {
			t.Fatal("sharded iterator yielded after Close")
		}
	}
}

// TestShardedBatchConcurrent fires concurrent sharded batches and single
// queries at one ShardedIndex (the -race consumer): every answer must
// match the serial reference and the per-query costs of the whole run
// must sum exactly to the aggregate the accountant accrued.
func TestShardedBatchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := clusterPoints(rng, 3000, 1000)
	ix, sx := buildBoth(t, pts, 7, gnn.IndexConfig{NodeCapacity: 16})

	groups := make([][]gnn.Point, 32)
	for i := range groups {
		groups[i] = queryGroup(rng, 8, 1000)
	}
	want := make([][]gnn.Result, len(groups))
	for i, qs := range groups {
		res, err := ix.GroupNN(qs, gnn.WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	sx.ResetCost()
	var mu sync.Mutex
	var total gnn.Cost
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0, 1: // sharded batches (sequential per-query scatter)
				out := sx.GroupNNBatch(groups, gnn.WithK(3), gnn.WithParallelism(3))
				mu.Lock()
				defer mu.Unlock()
				for i, r := range out {
					if r.Err != nil {
						t.Errorf("batch query %d: %v", i, r.Err)
						return
					}
					sameResults(t, fmt.Sprintf("goroutine %d query %d", g, i), want[i], r.Results)
					total.Add(r.Cost)
				}
			default: // single queries with parallel scatter
				for i, qs := range groups {
					res, cost, err := sx.GroupNNWithCost(qs, gnn.WithK(3), gnn.WithShards(4))
					if err != nil {
						t.Errorf("query %d: %v", i, err)
						return
					}
					mu.Lock()
					sameResults(t, fmt.Sprintf("goroutine %d single %d", g, i), want[i], res)
					total.Add(cost)
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if agg := sx.Cost(); agg != total {
		t.Fatalf("concurrent cost-sum invariant broken: Σ per-query %+v, accountant %+v", total, agg)
	}
}

// TestShardedEdgeCases exercises the degenerate shapes: empty index,
// single point, more shards than points, group larger than the data set,
// k larger than the data set.
func TestShardedEdgeCases(t *testing.T) {
	// Empty sharded index: every query answers cleanly with no results.
	sx, err := gnn.BuildShardedIndex(nil, nil, 4, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
		res, err := sx.GroupNN([]gnn.Point{{1, 2}, {3, 4}}, gnn.WithAlgorithm(algo), gnn.WithK(3))
		if err != nil {
			t.Fatalf("%v on empty sharded index: %v", algo, err)
		}
		if len(res) != 0 {
			t.Fatalf("%v on empty sharded index returned %v", algo, res)
		}
	}
	it, err := sx.GroupNNIterator([]gnn.Point{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("empty sharded iterator yielded a result")
	}
	it.Close()

	// More shards than points; group and k larger than the data set.
	pts := []gnn.Point{{0, 0}, {10, 10}, {20, 0}}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sx, err = gnn.BuildShardedIndex(pts, nil, 8, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	group := make([]gnn.Point, 10)
	for i := range group {
		group[i] = gnn.Point{float64(i), float64(10 - i)}
	}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
		want, err := ix.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithK(7))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithK(7))
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("%v tiny", algo), want, got)
		if len(got) != len(pts) {
			t.Fatalf("%v: k=7 over 3 points returned %d results", algo, len(got))
		}
	}

	// Invalid construction and queries.
	if _, err := gnn.BuildShardedIndex(pts, nil, 0, gnn.IndexConfig{}); err == nil {
		t.Fatal("BuildShardedIndex accepted 0 shards")
	}
	if _, err := sx.GroupNN(nil); err == nil {
		t.Fatal("sharded query accepted an empty group")
	}
	if _, err := sx.GroupNN(group, gnn.WithK(-1)); err == nil {
		t.Fatal("sharded query accepted a negative k")
	}
	if _, err := sx.GroupNN(group, gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithAggregate(gnn.MaxDist)); err == nil {
		t.Fatal("sharded SPM accepted the MAX aggregate")
	}
	if _, err := sx.GroupNN(group, gnn.WithLayout(gnn.LayoutPacked), gnn.WithRegion(gnn.Point{0, 0}, gnn.Point{5, 5})); err == nil {
		t.Fatal("sharded MBM accepted a pinned packed layout with a region")
	}
}

// TestShardedExactTies pins the documented tie latitude: with distinct
// points at identical coordinates split across shards, sharded and
// unsharded runs must agree on every distance, and any ID divergence must
// stay within the exact tie — a different representative, never a
// different distance or count.
func TestShardedExactTies(t *testing.T) {
	var pts []gnn.Point
	var ids []int64
	// Five duplicate pairs spread over the workspace so the Hilbert cut
	// separates some pairs, plus distinct filler points.
	for i := 0; i < 5; i++ {
		p := gnn.Point{float64(i * 200), float64(i * 150)}
		pts = append(pts, p, gnn.Point{p[0], p[1]})
		ids = append(ids, int64(10+i), int64(20+i))
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, gnn.Point{float64(i*25 + 7), float64(i*17 + 3)})
		ids = append(ids, int64(100+i))
	}
	ix, err := gnn.BuildIndex(pts, ids, gnn.IndexConfig{NodeCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := gnn.BuildShardedIndex(pts, ids, 3, gnn.IndexConfig{NodeCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	distOf := map[int64]gnn.Point{}
	for i, p := range pts {
		distOf[ids[i]] = p
	}
	group := []gnn.Point{{190, 140}, {210, 160}}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
		for k := 1; k <= 4; k++ {
			want, err := ix.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithK(k))
			if err != nil {
				t.Fatal(err)
			}
			got, err := sx.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithK(k))
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("%v/k=%d", algo, k), want, got)
			// Any swapped representative must sit at identical coordinates.
			for i := range want {
				if got[i].ID != want[i].ID {
					wp, gp := distOf[want[i].ID], distOf[got[i].ID]
					if wp[0] != gp[0] || wp[1] != gp[1] {
						t.Fatalf("%v/k=%d: rank %d swapped to a non-tied point: #%d%v vs #%d%v",
							algo, k, i, want[i].ID, wp, got[i].ID, gp)
					}
				}
			}
		}
	}
}

// FuzzShardedEquivalence fuzzes the sharded/unsharded differential across
// dataset size, shard count, group size, k, aggregate, algorithm and
// traversal. Any divergence in results or in the cost-sum invariant
// crashes the target.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(3), uint8(4), uint8(2), uint8(0), false)
	f.Add(int64(2), uint16(50), uint8(1), uint8(2), uint8(1), uint8(1), true)
	f.Add(int64(3), uint16(900), uint8(9), uint8(16), uint8(5), uint8(2), false)
	f.Add(int64(4), uint16(2), uint8(7), uint8(3), uint8(1), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, n uint16, shards, groupSize, k, algo uint8, df bool) {
		rng := rand.New(rand.NewSource(seed))
		pts := clusterPoints(rng, int(n)%1200+1, 600)
		s := int(shards)%9 + 1
		ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		sx, err := gnn.BuildShardedIndex(pts, nil, s, gnn.IndexConfig{NodeCapacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		qs := queryGroup(rng, int(groupSize)%24+1, 600)
		al := []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce}[int(algo)%4]
		agg := []gnn.Aggregate{gnn.SumDist, gnn.MaxDist, gnn.MinDist}[int(algo/4)%3]
		if al == gnn.AlgoSPM {
			agg = gnn.SumDist
		}
		opts := []gnn.QueryOption{gnn.WithK(int(k)%12 + 1), gnn.WithAlgorithm(al), gnn.WithAggregate(agg)}
		if df {
			opts = append(opts, gnn.WithDepthFirst())
		}
		want, err := ix.GroupNN(qs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sx.ResetCost()
		got, cost, err := sx.GroupNNWithCost(qs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "fuzz", want, got)
		if agg := sx.Cost(); agg != cost {
			t.Fatalf("cost-sum invariant broken: reported %+v, accountant %+v", cost, agg)
		}
	})
}
