package gnn_test

// Brute-force-oracle differential suite: every algorithm × aggregate ×
// layout × k cell, across every serving environment (plain index, packed
// layout, sharded scatter-gather, mapped snapshot, overlay-mutated
// index), must reproduce an independent streaming brute-force scan of
// the live point set bit for bit — identical distances, identical IDs up
// to sanctioned exact ties, identical Cost between layouts. The oracle
// below shares no traversal code with the kernels: it recomputes every
// aggregate distance from raw coordinates with the library's canonical
// floating-point op order (per-member sqrt of an axis-ordered squared
// sum, aggregated in member order), so agreement is exact, not
// approximate.
//
// Registering a new cell is one line in oracleCells; registering a new
// environment is one entry in the environment table of
// TestOracleDifferential.

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"gnn"
)

// oracleDist is the reference aggregate distance: no kernel code, same
// canonical FP op order (see weighted.go's SoA fast-path contract).
func oracleDist(p gnn.Point, qs []gnn.Point, agg gnn.Aggregate, w []float64) float64 {
	var out float64
	if agg == gnn.MinDist {
		out = math.Inf(1)
	}
	for i, q := range qs {
		var dsq float64
		for ax := range p {
			d := p[ax] - q[ax]
			dsq += d * d
		}
		d := math.Sqrt(dsq)
		if w != nil {
			d *= w[i]
		}
		switch agg {
		case gnn.MaxDist:
			if d > out {
				out = d
			}
		case gnn.MinDist:
			if d < out {
				out = d
			}
		default:
			out += d
		}
	}
	return out
}

// oracleTopK is the streaming brute-force ground truth: every live point
// scored, sorted ascending by aggregate distance (ties by ID — the
// tie-aware comparison treats equal-distance runs as sets).
func oracleTopK(pts []gnn.Point, ids []int64, qs []gnn.Point,
	agg gnn.Aggregate, w []float64, k int) []gnn.Result {
	all := make([]gnn.Result, len(pts))
	for i, p := range pts {
		all[i] = gnn.Result{Point: p, ID: ids[i], Dist: oracleDist(p, qs, agg, w)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// oracleCell is one registered query shape. weighted derives a
// deterministic per-member weight vector from the group size. rtol 0
// demands bit-identical distances (the single-pass kernels share the
// oracle's canonical FP op order); MQM cells carry an ulp-scale
// tolerance because its incremental per-stream accumulation legitimately
// reassociates the sum.
type oracleCell struct {
	name     string
	k        int
	agg      gnn.Aggregate
	weighted bool
	sumOnly  bool // cell uses an algorithm whose pruning lemma is sum-only
	rtol     float64
	opts     []gnn.QueryOption
}

func oracleCells() []oracleCell {
	c := func(name string, k int, agg gnn.Aggregate, weighted bool, opts ...gnn.QueryOption) oracleCell {
		return oracleCell{name: name, k: k, agg: agg, weighted: weighted, opts: opts}
	}
	mbm := gnn.WithAlgorithm(gnn.AlgoMBM)
	df := gnn.WithDepthFirst()
	return []oracleCell{
		c("MBM-BF/sum", 5, gnn.SumDist, false, mbm),
		c("MBM-BF/max", 5, gnn.MaxDist, false, mbm),
		c("MBM-BF/min", 5, gnn.MinDist, false, mbm),
		c("MBM-DF/sum", 5, gnn.SumDist, false, mbm, df),
		c("MBM-DF/max", 5, gnn.MaxDist, false, mbm, df),
		c("MBM-BF/max-generic", 5, gnn.MaxDist, false, mbm, gnn.WithGenericMax()),
		c("MBM-DF/max-generic", 5, gnn.MaxDist, false, mbm, df, gnn.WithGenericMax()),
		c("MBM-BF/max/k=1", 1, gnn.MaxDist, false, mbm),
		c("MBM-BF/max/k=32", 32, gnn.MaxDist, false, mbm),
		c("MBM-BF/sum/weighted", 5, gnn.SumDist, true, mbm),
		c("MBM-BF/max/weighted", 5, gnn.MaxDist, true, mbm),
		c("MBM-DF/max/weighted", 5, gnn.MaxDist, true, mbm, df),
		c("MBM-BF/max-generic/weighted", 5, gnn.MaxDist, true, mbm, gnn.WithGenericMax()),
		{name: "MQM/sum", k: 3, agg: gnn.SumDist, rtol: 1e-12,
			opts: []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}},
		{name: "MQM/max", k: 3, agg: gnn.MaxDist, rtol: 1e-12,
			opts: []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}},
		{name: "SPM/sum", k: 5, agg: gnn.SumDist, sumOnly: true,
			opts: []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM)}},
		c("brute/max", 5, gnn.MaxDist, false, gnn.WithAlgorithm(gnn.AlgoBruteForce)),
	}
}

// oracleWeights derives the deterministic weight vector for a group.
func oracleWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 + float64((i*7)%11)*0.375
	}
	return w
}

// oracleCheck runs one cell against one environment on the given layout
// and compares with the brute-force ground truth, tie-aware.
func oracleCheck(t *testing.T, env string, g grouper, pts []gnn.Point, ids []int64,
	groups [][]gnn.Point, cell oracleCell, layout gnn.Layout) {
	t.Helper()
	for gi, qs := range groups {
		var w []float64
		if cell.weighted {
			w = oracleWeights(len(qs))
		}
		opts := append([]gnn.QueryOption{
			gnn.WithK(cell.k), gnn.WithAggregate(cell.agg), gnn.WithLayout(layout),
		}, cell.opts...)
		if w != nil {
			opts = append(opts, gnn.WithWeights(w))
		}
		got, err := g.GroupNN(qs, opts...)
		if err != nil {
			t.Fatalf("%s/%s group=%d: %v", env, cell.name, gi, err)
		}
		want := oracleTopK(pts, ids, qs, cell.agg, w, cell.k)
		if cell.rtol == 0 {
			sameResults(t, env+"/"+cell.name, want, got)
			continue
		}
		oracleApprox(t, env+"/"+cell.name, want, got, qs, cell.agg, w, cell.rtol)
	}
}

// oracleApprox is the tolerant top-k check for kernels whose reported
// distances legitimately reassociate FP ops: each result must be a real
// point whose true aggregate distance matches its reported one within
// rtol, ranks must be non-decreasing, and the k-th distance must match
// the oracle's k-th within rtol (so no qualifying point was dropped and
// no non-qualifying point slipped in beyond tie noise).
func oracleApprox(t *testing.T, name string, want, got []gnn.Result,
	qs []gnn.Point, agg gnn.Aggregate, w []float64, rtol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", name, len(want), len(got))
	}
	close := func(a, b float64) bool { return math.Abs(a-b) <= rtol*(1+math.Abs(a)+math.Abs(b)) }
	for i, r := range got {
		if i > 0 && got[i-1].Dist > r.Dist {
			t.Fatalf("%s: ranks out of order at %d: %v > %v", name, i, got[i-1].Dist, r.Dist)
		}
		if exact := oracleDist(r.Point, qs, agg, w); !close(exact, r.Dist) {
			t.Fatalf("%s: rank %d reports dist %v, true aggregate distance %v",
				name, i, r.Dist, exact)
		}
		if !close(want[i].Dist, r.Dist) {
			t.Fatalf("%s: rank %d dist %v, oracle %v\nwant: %v\ngot:  %v",
				name, i, r.Dist, want[i].Dist, want, got)
		}
	}
}

func TestOracleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	pts := clusterPoints(rng, 2200, 1000)
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	groups := make([][]gnn.Point, 10)
	for i := range groups {
		groups[i] = queryGroup(rng, []int{1, 2, 5, 16, 48}[i%5], 1000)
	}

	ix, err := gnn.BuildIndex(pts, ids, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := gnn.BuildShardedIndex(pts, ids, 4, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "oracle.snap")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	// The overlay environment mutates a copy of the base index — overlay
	// inserts past the fold threshold, base tombstones, overlay deletes,
	// a resurrection — and the oracle tracks the live multiset.
	oix, err := gnn.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mrng := rand.New(rand.NewSource(5432))
	livePts, liveIDs := runMutationScript(t, oix, pts, mrng)

	envs := []struct {
		name    string
		g       grouper
		pts     []gnn.Point
		ids     []int64
		layouts []gnn.Layout
	}{
		{"plain", ix, pts, ids, []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked}},
		{"sharded", sx, pts, ids, []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked}},
		{"mapped", mapped, pts, ids, []gnn.Layout{gnn.LayoutPacked}},
		{"overlay", oix, livePts, liveIDs, []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked}},
	}
	for _, env := range envs {
		for _, cell := range oracleCells() {
			for _, layout := range env.layouts {
				oracleCheck(t, env.name, env.g, env.pts, env.ids, groups, cell, layout)
			}
		}
	}
}

// TestOracleCostParity locks the layout contract on top of the result
// contract: for deterministic executions (plain index, sequential
// sharded scatter) the dynamic and packed layouts of every cell must
// charge the identical Cost.
func TestOracleCostParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8765))
	pts := clusterPoints(rng, 2200, 1000)
	ix, sx := buildBoth(t, pts, 4, gnn.IndexConfig{NodeCapacity: 16})
	groups := make([][]gnn.Point, 6)
	for i := range groups {
		groups[i] = queryGroup(rng, []int{1, 4, 16}[i%3], 1000)
	}
	run := func(name string, qs []gnn.Point, opts []gnn.QueryOption) {
		t.Helper()
		dRes, dCost, err := ix.GroupNNWithCost(qs, append(opts, gnn.WithLayout(gnn.LayoutDynamic))...)
		if err != nil {
			t.Fatalf("%s dynamic: %v", name, err)
		}
		pRes, pCost, err := ix.GroupNNWithCost(qs, append(opts, gnn.WithLayout(gnn.LayoutPacked))...)
		if err != nil {
			t.Fatalf("%s packed: %v", name, err)
		}
		sameResults(t, name, dRes, pRes)
		if dCost != pCost {
			t.Fatalf("%s: cost diverged between layouts: %+v vs %+v", name, dCost, pCost)
		}
		sRes, _, err := sx.GroupNNWithCost(qs, append(opts, gnn.WithShards(1))...)
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		sameResults(t, name+"/sharded", dRes, sRes)
	}
	for gi, qs := range groups {
		for _, cell := range oracleCells() {
			if cell.sumOnly && cell.agg != gnn.SumDist {
				continue
			}
			opts := append([]gnn.QueryOption{
				gnn.WithK(cell.k), gnn.WithAggregate(cell.agg),
			}, cell.opts...)
			if cell.weighted {
				opts = append(opts, gnn.WithWeights(oracleWeights(len(qs))))
			}
			run(cell.name+"/g"+string(rune('0'+gi)), qs, opts)
		}
	}
}
