package gnn

import (
	"context"
	"fmt"

	"gnn/internal/core"
	"gnn/internal/pagestore"
)

// Cancellation errors, re-exported from the query kernels. Both wrap
// their context counterpart, so errors.Is matches either the typed
// sentinel or context.Canceled / context.DeadlineExceeded.
var (
	// ErrCanceled reports a query abandoned mid-traversal because its
	// context was canceled.
	ErrCanceled = core.ErrCanceled
	// ErrDeadlineExceeded reports a query abandoned mid-traversal
	// because its context's deadline passed.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
)

// GroupNNContext is GroupNN under a context: the traversal polls ctx at
// bounded intervals (every few hundred node or point visits) and, once
// it fires, unwinds and returns ErrCanceled or ErrDeadlineExceeded. A
// context that can never fire (context.Background()) adds no overhead.
// Cost accounting is exact up to the stop: the index-wide counters
// accrue whatever the abandoned traversal actually touched.
func (ix *Index) GroupNNContext(ctx context.Context, query []Point, opts ...QueryOption) ([]Result, error) {
	res, _, err := ix.GroupNNWithCostContext(ctx, query, opts...)
	return res, err
}

// GroupNNWithCostContext is GroupNNContext returning the query's own
// I/O cost alongside the results. On cancellation the returned Cost
// holds the partial cost of the abandoned traversal.
func (ix *Index) GroupNNWithCostContext(ctx context.Context, query []Point, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	c.cancel = core.NewCancelCheck(ctx)
	var tk pagestore.CostTracker
	res, err := ix.groupNN(query, c, &tk, nil)
	return res, costOf(tk), err
}

// GroupNNContext is GroupNN under a context for the sharded index. Each
// shard of the scatter polls the context independently (forked checks,
// no cross-shard synchronisation) and the whole scatter unwinds within
// a bounded number of node visits of the context firing.
func (sx *ShardedIndex) GroupNNContext(ctx context.Context, query []Point, opts ...QueryOption) ([]Result, error) {
	res, _, err := sx.GroupNNWithCostContext(ctx, query, opts...)
	return res, err
}

// GroupNNWithCostContext is GroupNNContext returning the query's own
// I/O cost — the exact sum of per-shard accesses up to the stop.
func (sx *ShardedIndex) GroupNNWithCostContext(ctx context.Context, query []Point, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	c.cancel = core.NewCancelCheck(ctx)
	var tk pagestore.CostTracker
	res, err := sx.groupNN(query, c, &tk, nil, defaultScatterWorkers())
	return res, costOf(tk), err
}

// GroupNNBatchContext is GroupNNBatch under a context. Queries the
// batch had not started when the context fired fail with ErrCanceled /
// ErrDeadlineExceeded in their own entry; queries already running are
// stopped by their traversal's own poll. The error return is nil when
// the context outlived the batch, the typed context error otherwise —
// per-query entries remain individually meaningful either way.
func (ix *Index) GroupNNBatchContext(ctx context.Context, queries [][]Point, opts ...QueryOption) ([]BatchResult, error) {
	return batchContext(ctx, queries, opts, func(q []Point, c queryConfig, tk *pagestore.CostTracker, ec *core.ExecContext) ([]Result, error) {
		return ix.groupNN(q, c, tk, ec)
	})
}

// GroupNNBatchContext is GroupNNBatch under a context for the sharded
// index; semantics as for Index.GroupNNBatchContext.
func (sx *ShardedIndex) GroupNNBatchContext(ctx context.Context, queries [][]Point, opts ...QueryOption) ([]BatchResult, error) {
	return batchContext(ctx, queries, opts, func(q []Point, c queryConfig, tk *pagestore.CostTracker, ec *core.ExecContext) ([]Result, error) {
		return sx.groupNN(q, c, tk, ec, 1)
	})
}

// batchContext runs the pooled batch loop with a per-query forked
// cancel check (a CancelCheck belongs to one goroutine; pool workers
// run concurrently, so each query gets its own).
func batchContext(ctx context.Context, queries [][]Point, opts []QueryOption,
	run func([]Point, queryConfig, *pagestore.CostTracker, *core.ExecContext) ([]Result, error)) ([]BatchResult, error) {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out, core.ContextErr(ctx)
	}
	c := buildConfig(opts)
	root := core.NewCancelCheck(ctx)
	core.RunPooled(len(queries), c.parallelism, func(i int, ec *core.ExecContext) {
		// Contain per-query panics: one poisoned query must fail its own
		// entry, not take down the batch's worker pool (and, behind the
		// server, the whole process).
		defer func() {
			if p := recover(); p != nil {
				out[i].Err = fmt.Errorf("gnn: query panic: %v", p)
			}
		}()
		qc := c
		qc.cancel = root.Fork()
		var tk pagestore.CostTracker
		out[i].Results, out[i].Err = run(queries[i], qc, &tk, ec)
		out[i].Cost = costOf(tk)
	})
	return out, core.ContextErr(ctx)
}
