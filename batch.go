package gnn

import (
	"gnn/internal/core"
	"gnn/internal/pagestore"
)

// BatchResult is the outcome of one query of a GroupNNBatch call.
type BatchResult struct {
	// Results are the query's group nearest neighbors, ascending by
	// aggregate distance.
	Results []Result
	// Cost is the query's own I/O cost.
	Cost Cost
	// Err is the query's error, if any. Queries fail independently: one
	// malformed group does not abort the batch.
	Err error
}

// GroupNNBatch answers many GNN queries concurrently against the shared
// index, using a worker pool of WithParallelism(n) goroutines (default
// GOMAXPROCS). Options apply to every query. The result slice is parallel
// to queries; each entry carries its own results, per-query cost and
// error. Because every query runs in its own execution context, the batch
// may itself run concurrently with other queries or batches.
//
// Each worker holds one pooled execution context for the whole batch, so
// every query after a worker's first reuses warm scratch (heaps, candidate
// buffers, result lists) instead of allocating.
func (ix *Index) GroupNNBatch(queries [][]Point, opts ...QueryOption) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	c := buildConfig(opts)
	core.RunPooled(len(queries), c.parallelism, func(i int, ec *core.ExecContext) {
		var tk pagestore.CostTracker
		out[i].Results, out[i].Err = ix.groupNN(queries[i], c, &tk, ec)
		out[i].Cost = costOf(tk)
	})
	return out
}

// GroupNNBatch answers many GNN queries concurrently against the sharded
// index with a worker pool of WithParallelism(n) goroutines (default
// GOMAXPROCS). Each worker answers one query at a time and, by default,
// scans that query's shards sequentially from its own goroutine — batch
// throughput comes from concurrent queries, and the shared pruning bound
// cascades from shard to shard within each query, so later shards start
// already tightly bounded. WithShards(n) overrides the per-query scatter
// width when individual query latency matters more than batch density.
// Results are identical to Index.GroupNNBatch over the same points.
func (sx *ShardedIndex) GroupNNBatch(queries [][]Point, opts ...QueryOption) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	c := buildConfig(opts)
	core.RunPooled(len(queries), c.parallelism, func(i int, ec *core.ExecContext) {
		var tk pagestore.CostTracker
		out[i].Results, out[i].Err = sx.groupNN(queries[i], c, &tk, ec, 1)
		out[i].Cost = costOf(tk)
	})
	return out
}
