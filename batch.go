package gnn

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gnn/internal/core"
	"gnn/internal/pagestore"
)

// BatchResult is the outcome of one query of a GroupNNBatch call.
type BatchResult struct {
	// Results are the query's group nearest neighbors, ascending by
	// aggregate distance.
	Results []Result
	// Cost is the query's own I/O cost.
	Cost Cost
	// Err is the query's error, if any. Queries fail independently: one
	// malformed group does not abort the batch.
	Err error
}

// GroupNNBatch answers many GNN queries concurrently against the shared
// index, using a worker pool of WithParallelism(n) goroutines (default
// GOMAXPROCS). Options apply to every query. The result slice is parallel
// to queries; each entry carries its own results, per-query cost and
// error. Because every query runs in its own execution context, the batch
// may itself run concurrently with other queries or batches.
//
// Each worker holds one pooled execution context for the whole batch, so
// every query after a worker's first reuses warm scratch (heaps, candidate
// buffers, result lists) instead of allocating.
func (ix *Index) GroupNNBatch(queries [][]Point, opts ...QueryOption) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	c := buildConfig(opts)
	workers := c.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	answer := func(i int, ec *core.ExecContext) {
		var tk pagestore.CostTracker
		out[i].Results, out[i].Err = ix.groupNN(queries[i], c, &tk, ec)
		out[i].Cost = costOf(tk)
	}
	if workers == 1 {
		ec := core.AcquireExec()
		defer ec.Release()
		for i := range queries {
			answer(i, ec)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ec := core.AcquireExec()
			defer ec.Release()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				answer(i, ec)
			}
		}()
	}
	wg.Wait()
	return out
}
