package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"gnn"
)

// shardedSnapshot is the JSON schema of the -shards-out file: the batch
// throughput of the sharded scatter-gather execution swept over shard
// counts, against the unsharded Index as the S=0 baseline row.
type shardedSnapshot struct {
	benchEnv
	benchWorkload
	Workers int            `json:"batch_workers"`
	Results []shardedPoint `json:"results"`
}

type shardedPoint struct {
	// Shards is the shard count; 0 is the unsharded Index baseline.
	Shards     int     `json:"shards"`
	QueriesSec float64 `json:"queries_per_sec"`
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup_vs_unsharded"`
	// NAPerQuery is the mean node accesses per query — for sharded rows
	// the exact sum over shards; with sequential per-query scatter the
	// shared bound cascades, so this may drop below the baseline.
	NAPerQuery float64 `json:"na_per_query"`
	// AllocsPerQuery is the steady-state heap allocation count per query
	// (warm pass). The acceptance bar: sharding must not inflate it.
	AllocsPerQuery float64 `json:"allocs_per_query"`
}

// runShards measures the sharded batch engine: shard counts 1/2/4/max
// (plus the unsharded baseline) answering the same fixed workload.
func runShards(maxShards int, scale float64, numQueries int, seed int64, outPath string) error {
	d, ix, batch, err := benchFixture(scale, numQueries, seed)
	if err != nil {
		return err
	}
	const groupSize, k = benchGroupSize, benchK
	workers := runtime.GOMAXPROCS(0)

	pts := make([]gnn.Point, 0, ix.Len())
	for _, p := range d.Points {
		pts = append(pts, gnn.Point(p))
	}
	pts = pts[:ix.Len()]

	sweep := map[int]bool{1: true, 2: true, 4: true, maxShards: true}
	counts := make([]int, 0, len(sweep))
	for s := range sweep {
		if s <= maxShards {
			counts = append(counts, s)
		}
	}
	sort.Ints(counts)

	snap := shardedSnapshot{
		benchEnv:      newBenchEnv(d.Name, ix.Len(), scale),
		benchWorkload: newBenchWorkload(len(batch)),
		Workers:       workers,
	}
	fmt.Printf("# sharded scatter-gather throughput — %s (%d points), %d queries of n=%d, k=%d, %d batch workers\n\n",
		d.Name, ix.Len(), len(batch), groupSize, k, workers)
	fmt.Printf("%-8s  %12s  %10s  %8s  %12s  %14s\n",
		"shards", "queries/sec", "seconds", "speedup", "NA/query", "allocs/query")

	measure := func(run func() []gnn.BatchResult, resetCost func(), cost func() gnn.Cost) (shardedPoint, error) {
		run() // warm-up pass
		resetCost()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out := run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		for _, r := range out {
			if r.Err != nil {
				return shardedPoint{}, r.Err
			}
		}
		return shardedPoint{
			QueriesSec:     float64(len(batch)) / elapsed.Seconds(),
			Seconds:        elapsed.Seconds(),
			NAPerQuery:     float64(cost().NodeAccesses) / float64(len(batch)),
			AllocsPerQuery: float64(after.Mallocs-before.Mallocs) / float64(len(batch)),
		}, nil
	}
	emit := func(shards int, pt shardedPoint, base float64) float64 {
		if base == 0 {
			base = pt.QueriesSec
		}
		pt.Shards = shards
		pt.Speedup = pt.QueriesSec / base
		snap.Results = append(snap.Results, pt)
		label := fmt.Sprintf("%d", shards)
		if shards == 0 {
			label = "none"
		}
		fmt.Printf("%-8s  %12.1f  %10.3f  %7.2fx  %12.1f  %14.1f\n",
			label, pt.QueriesSec, pt.Seconds, pt.Speedup, pt.NAPerQuery, pt.AllocsPerQuery)
		return base
	}

	// Unsharded baseline.
	pt, err := measure(func() []gnn.BatchResult {
		return ix.GroupNNBatch(batch, gnn.WithK(k), gnn.WithParallelism(workers))
	}, ix.ResetCost, ix.Cost)
	if err != nil {
		return err
	}
	base := emit(0, pt, 0)

	for _, s := range counts {
		sx, err := gnn.BuildShardedIndex(pts, nil, s, gnn.IndexConfig{})
		if err != nil {
			return err
		}
		pt, err := measure(func() []gnn.BatchResult {
			return sx.GroupNNBatch(batch, gnn.WithK(k), gnn.WithParallelism(workers))
		}, sx.ResetCost, sx.Cost)
		if err != nil {
			return err
		}
		emit(s, pt, base)
	}

	return writeBenchJSON(outPath, snap)
}
