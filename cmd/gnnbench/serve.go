package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gnn/internal/server"
	"gnn/internal/stats"
)

// serveBenchOut is the JSON schema of the -serve-out file
// (BENCH_serve.json): serving throughput and client-observed latency
// percentiles of the HTTP daemon at each swept concurrency level.
type serveBenchOut struct {
	benchEnv
	benchWorkload
	// Target is the benched endpoint: "in-process" (a daemon stood up
	// inside the bench over a freshly generated snapshot — the
	// reproducible default) or the -serve-url of a live gnnserve.
	Target string `json:"target"`
	// MetricsEnabled records that the sweep ran with the telemetry layer
	// live — /metrics registered, per-request counters and latency
	// histograms observed, slow-query log armed — so the numbers carry
	// their instrumentation provenance.
	MetricsEnabled bool `json:"metrics_enabled"`
	// DurationSeconds is the measurement window per concurrency level.
	DurationSeconds float64          `json:"duration_seconds"`
	Results         []serveLoadPoint `json:"results"`
	// Baseline embeds a previous sweep (-serve-baseline) so the
	// instrumentation overhead delta is visible in one file.
	Baseline []serveLoadPoint `json:"baseline,omitempty"`
}

// serveLoadPoint is one concurrency level of the sweep.
type serveLoadPoint struct {
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// Errors counts non-200 responses (429s under overload land here;
	// they are part of the daemon's contract, not a bench failure).
	Errors int     `json:"errors"`
	QPS    float64 `json:"qps"`
	// Client-observed request latency, milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// runServeBench drives query load against a gnnserve HTTP endpoint and
// emits qps + p50/p99/p999 per concurrency level. With -serve-url it
// targets a live daemon; otherwise it stands one up in-process over a
// snapshot generated from the TS dataset at -scale, so the bench is
// self-contained and comparable across revisions.
func runServeBench(url string, maxClients int, dur time.Duration, scale float64, numQueries int, seed int64, outPath, baselinePath string) error {
	_, ix, queries, err := benchFixture(scale, numQueries, seed)
	if err != nil {
		return err
	}
	target := url
	if url == "" {
		dir, err := os.MkdirTemp("", "gnnserve-bench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		snap := filepath.Join(dir, "bench.snap")
		if err := ix.WriteSnapshotFile(snap); err != nil {
			return err
		}
		srv, err := server.New(server.Config{
			SnapshotPath: snap,
			// Plenty of head-room: this sweep measures serving capacity,
			// not the admission contract (faults_test covers that).
			MaxInflight: 4 * maxClients,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		url = "http://" + ln.Addr().String()
		target = "in-process"
	}

	// Pre-marshal the request bodies: the bench must measure the
	// daemon, not the client's JSON encoder.
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		raw := make([][]float64, len(q))
		for j, p := range q {
			raw[j] = p
		}
		b, err := json.Marshal(map[string]any{"query": raw, "k": benchK, "timeout_ms": 30_000})
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	out := serveBenchOut{
		benchEnv:        newBenchEnv("TS", ix.Len(), scale),
		benchWorkload:   newBenchWorkload(numQueries),
		Target:          target,
		MetricsEnabled:  true,
		DurationSeconds: dur.Seconds(),
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline sweep: %w", err)
		}
		var base serveBenchOut
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing baseline sweep: %w", err)
		}
		out.Baseline = base.Results
	}
	fmt.Printf("serve bench: %s, %d points, %d query groups, %v per level\n",
		target, ix.Len(), len(queries), dur)
	fmt.Printf("%8s %10s %10s %9s %9s %9s %7s\n",
		"clients", "requests", "qps", "p50 ms", "p99 ms", "p999 ms", "errors")

	for _, clients := range sweepClients(maxClients) {
		pt, err := driveLoad(url, bodies, clients, dur)
		if err != nil {
			return err
		}
		out.Results = append(out.Results, pt)
		fmt.Printf("%8d %10d %10.0f %9.3f %9.3f %9.3f %7d\n",
			pt.Clients, pt.Requests, pt.QPS, pt.P50MS, pt.P99MS, pt.P999MS, pt.Errors)
	}
	printServeDelta(out.Baseline, out.Results)
	return writeBenchJSON(outPath, out)
}

// printServeDelta renders the per-level qps change against an embedded
// baseline sweep — the instrumentation overhead when the baseline
// predates the telemetry layer. Serving throughput is HTTP-dominated,
// so machine noise swamps small deltas; the table states the change, it
// does not gate it.
func printServeDelta(baseline, current []serveLoadPoint) {
	if len(baseline) == 0 {
		return
	}
	byClients := map[int]serveLoadPoint{}
	for _, b := range baseline {
		byClients[b.Clients] = b
	}
	fmt.Printf("\n# qps vs embedded baseline\n")
	fmt.Printf("%8s %12s %12s %8s\n", "clients", "base qps", "qps", "delta")
	for _, c := range current {
		b, ok := byClients[c.Clients]
		if !ok || b.QPS == 0 {
			continue
		}
		fmt.Printf("%8d %12.0f %12.0f %+7.1f%%\n", c.Clients, b.QPS, c.QPS, 100*(c.QPS/b.QPS-1))
	}
}

// sweepClients yields the swept concurrency levels: powers of two up to
// max, max itself included.
func sweepClients(max int) []int {
	var out []int
	for c := 1; c < max; c *= 2 {
		out = append(out, c)
	}
	return append(out, max)
}

// driveLoad hammers the endpoint with `clients` concurrent loops for
// the window and aggregates client-observed latencies.
func driveLoad(url string, bodies [][]byte, clients int, dur time.Duration) (serveLoadPoint, error) {
	transport := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: time.Minute}

	// Warm the connection pool and the daemon's first-query verify
	// outside the measured window.
	if resp, err := client.Post(url+"/v1/groupnn", "application/json", bytes.NewReader(bodies[0])); err != nil {
		return serveLoadPoint{}, fmt.Errorf("warm-up query: %w", err)
	} else {
		resp.Body.Close()
	}

	type clientTally struct {
		latencies []float64 // milliseconds
		errors    int
	}
	tallies := make([]clientTally, clients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tally := &tallies[c]
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/groupnn", "application/json",
					bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					tally.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					tally.errors++
					continue
				}
				tally.latencies = append(tally.latencies, float64(time.Since(t0).Microseconds())/1000)
			}
		}(c)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	pt := serveLoadPoint{Clients: clients}
	for _, tl := range tallies {
		all = append(all, tl.latencies...)
		pt.Errors += tl.errors
	}
	pt.Requests = len(all)
	pt.QPS = float64(len(all)) / elapsed
	pt.P50MS = stats.Percentile(all, 50)
	pt.P99MS = stats.Percentile(all, 99)
	pt.P999MS = stats.Percentile(all, 99.9)
	return pt, nil
}
