package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/snapshot"
	"gnn/internal/workload"
)

// snapshotBench is the JSON schema of the -snapshot-out file
// (BENCH_snapshot.json): cold-start serving from a persisted snapshot
// versus re-bulk-loading the same index from raw points, with full
// format/layout provenance so the numbers stay attributable across
// revisions.
type snapshotBench struct {
	benchEnv
	// FormatVersion and Layout record what exactly was persisted: the
	// snapshot format version and the serving layout it deserialises to.
	FormatVersion int             `json:"format_version"`
	Layout        string          `json:"layout"`
	Results       []snapshotPoint `json:"results"`
}

type snapshotPoint struct {
	// Kind is "plain" or "sharded"; Shards is 0 for plain.
	Kind   string `json:"kind"`
	Shards int    `json:"shards"`
	// BuildSeconds rebuilds the index from raw points (bulk load + pack) —
	// the cold-start path without persistence.
	BuildSeconds float64 `json:"build_seconds"`
	// WriteSeconds serialises the index; SnapshotBytes is the file size.
	WriteSeconds  float64 `json:"write_seconds"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	// LoadSeconds cold-starts from the snapshot file (read + decode +
	// validate + rebuild dynamic nodes).
	LoadSeconds float64 `json:"load_seconds"`
	// SpeedupLoadVsBuild is BuildSeconds / LoadSeconds — the cold-start
	// win persistence buys.
	SpeedupLoadVsBuild float64 `json:"speedup_load_vs_build"`
	// Verified confirms the loaded index answered a query sample with
	// bit-identical results and costs to the built one.
	Verified bool `json:"verified"`
	// Mapped holds the zero-copy (mmap) open cells; present only when
	// the bench ran with -mmap.
	Mapped *mappedPoint `json:"mapped,omitempty"`
}

// mappedPoint measures the OpenSnapshotMapped path against the copying
// load of the same file: open latency (the lazy default defers checksums
// to the first query, so this is the instant-serving number), retained
// heap as a resident-set proxy (measured after the first query, so the
// deferred verification and point-view materialisation are charged), and
// serving throughput once warm.
type mappedPoint struct {
	// OpenSeconds maps the file and adopts the arena (frame validation
	// only); SpeedupVsLoad is LoadSeconds / OpenSeconds.
	OpenSeconds   float64 `json:"open_seconds"`
	SpeedupVsLoad float64 `json:"speedup_open_vs_load"`
	// LoadHeapBytes and OpenHeapBytes are the retained-heap deltas of a
	// copying load vs a mapped open, both taken after one query: the
	// mapped arena lives in shared file-backed pages, so its private
	// footprint stays near the point-view slab alone.
	LoadHeapBytes int64 `json:"load_heap_bytes"`
	OpenHeapBytes int64 `json:"open_heap_bytes"`
	// QueriesSec serves the bench workload from the mapped index
	// (sequential, WithShards(1) on sharded kinds); LoadQueriesSec is the
	// same workload on the copy-loaded index — warm, they should match.
	QueriesSec     float64 `json:"queries_per_sec"`
	LoadQueriesSec float64 `json:"load_queries_per_sec"`
	// ParallelQueriesSec (sharded kinds only) scatters every query across
	// all shards' resident workers (WithShards(S)); ParallelSpeedup is
	// the ratio over the sequential mapped throughput. Interpret both
	// against the snapshot's num_cpu.
	ParallelQueriesSec float64 `json:"parallel_queries_per_sec,omitempty"`
	ParallelSpeedup    float64 `json:"parallel_speedup,omitempty"`
	// Verified confirms the mapped index answered the query sample with
	// bit-identical results and costs to the built one.
	Verified bool `json:"verified"`
}

// measureSeconds runs fn adaptively (at least minRounds, then until
// minWall) and returns the mean seconds per run.
func measureSeconds(fn func() error) (float64, error) {
	const minRounds, maxRounds, minWall = 3, 25, 1 * time.Second
	start := time.Now()
	rounds := 0
	for rounds < minRounds || (time.Since(start) < minWall && rounds < maxRounds) {
		if err := fn(); err != nil {
			return 0, err
		}
		rounds++
	}
	return time.Since(start).Seconds() / float64(rounds), nil
}

// runSnapshotBench measures cold-start load vs rebuild on a uniform
// n-point index (the acceptance workload: 100k points, load ≥ 10×
// faster than rebuild), for the plain index and a 4-shard ShardedIndex.
// With withMmap it additionally measures the zero-copy open path
// against the copying load of the same files.
func runSnapshotBench(n int, seed int64, outPath string, withMmap bool) error {
	d := dataset.GenerateUniform(fmt.Sprintf("uniform-%d", n), n, seed)
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	qs, err := workload.Generate(workload.Spec{
		N: benchGroupSize, AreaFraction: 0.08, Queries: 20,
		Workspace: dataset.Workspace(), Seed: seed,
	})
	if err != nil {
		return err
	}
	queries := make([][]gnn.Point, len(qs))
	for i, q := range qs {
		g := make([]gnn.Point, len(q.Points))
		for j, p := range q.Points {
			g[j] = gnn.Point(p)
		}
		queries[i] = g
	}

	dir, err := os.MkdirTemp("", "gnnbench-snapshot")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	snap := snapshotBench{
		benchEnv:      newBenchEnv(d.Name, n, 1.0),
		FormatVersion: snapshot.Version,
		Layout:        gnn.LayoutPacked.String(),
	}
	fmt.Printf("# cold-start: snapshot load vs rebuild — %d uniform points, format v%d\n\n", n, snapshot.Version)
	fmt.Printf("%-8s  %7s  %10s  %10s  %10s  %10s  %9s\n",
		"kind", "shards", "build s", "write s", "load s", "bytes", "speedup")

	type indexOps struct {
		kind       string
		shards     int
		build      func() (any, error)
		write      func(ix any, path string) error
		load       func(path string) (any, error)
		openMapped func(path string) (any, error)
		closeIx    func(ix any) error
		answer     func(ix any, q []gnn.Point) ([]gnn.Result, gnn.Cost, error)
		// answerPar scatters one query across all shards' resident
		// workers; nil for the plain index (it has no scatter path).
		answerPar func(ix any, q []gnn.Point) error
	}
	plain := indexOps{
		kind: "plain",
		build: func() (any, error) {
			return gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
		},
		write:      func(ix any, path string) error { return ix.(*gnn.Index).WriteSnapshotFile(path) },
		load:       func(path string) (any, error) { return gnn.OpenSnapshotFile(path) },
		openMapped: func(path string) (any, error) { return gnn.OpenSnapshotMapped(path) },
		closeIx:    func(ix any) error { return ix.(*gnn.Index).Close() },
		answer: func(ix any, q []gnn.Point) ([]gnn.Result, gnn.Cost, error) {
			return ix.(*gnn.Index).GroupNNWithCost(q, gnn.WithK(benchK))
		},
	}
	sharded := indexOps{
		kind: "sharded", shards: 4,
		build: func() (any, error) {
			return gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{})
		},
		write:      func(ix any, path string) error { return ix.(*gnn.ShardedIndex).WriteSnapshotFile(path) },
		load:       func(path string) (any, error) { return gnn.OpenShardedSnapshotFile(path) },
		openMapped: func(path string) (any, error) { return gnn.OpenShardedSnapshotMapped(path) },
		closeIx:    func(ix any) error { return ix.(*gnn.ShardedIndex).Close() },
		answer: func(ix any, q []gnn.Point) ([]gnn.Result, gnn.Cost, error) {
			return ix.(*gnn.ShardedIndex).GroupNNWithCost(q, gnn.WithK(benchK), gnn.WithShards(1))
		},
		answerPar: func(ix any, q []gnn.Point) error {
			_, err := ix.(*gnn.ShardedIndex).GroupNN(q, gnn.WithK(benchK), gnn.WithShards(4))
			return err
		},
	}

	for _, ops := range []indexOps{plain, sharded} {
		var built any
		buildS, err := measureSeconds(func() error {
			ix, err := ops.build()
			built = ix
			return err
		})
		if err != nil {
			return err
		}
		path := filepath.Join(dir, ops.kind+".snap")
		var writeS float64
		if writeS, err = measureSeconds(func() error { return ops.write(built, path) }); err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		var loaded any
		loadS, err := measureSeconds(func() error {
			ix, err := ops.load(path)
			loaded = ix
			return err
		})
		if err != nil {
			return err
		}

		verified := true
		for _, q := range queries {
			br, bc, berr := ops.answer(built, q)
			lr, lc, lerr := ops.answer(loaded, q)
			if berr != nil || lerr != nil {
				return fmt.Errorf("verify: %v / %v", berr, lerr)
			}
			if !reflect.DeepEqual(br, lr) || bc != lc {
				verified = false
			}
		}
		if !verified {
			return fmt.Errorf("%s: snapshot-loaded index diverged from the built index", ops.kind)
		}

		pt := snapshotPoint{
			Kind: ops.kind, Shards: ops.shards,
			BuildSeconds: buildS, WriteSeconds: writeS, SnapshotBytes: fi.Size(),
			LoadSeconds: loadS, SpeedupLoadVsBuild: buildS / loadS, Verified: verified,
		}
		if withMmap {
			mp, err := measureMapped(ops.openMapped, ops.load, ops.closeIx,
				ops.answer, ops.answerPar, path, loadS, queries, built)
			if err != nil {
				return fmt.Errorf("%s mapped: %w", ops.kind, err)
			}
			pt.Mapped = mp
		}
		snap.Results = append(snap.Results, pt)
		fmt.Printf("%-8s  %7d  %10.4f  %10.4f  %10.4f  %10d  %8.1fx\n",
			pt.Kind, pt.Shards, pt.BuildSeconds, pt.WriteSeconds, pt.LoadSeconds, pt.SnapshotBytes, pt.SpeedupLoadVsBuild)
	}

	if withMmap {
		fmt.Printf("\n# mmap open vs copying load (lazy verify; heap deltas after first query)\n\n")
		fmt.Printf("%-8s  %10s  %9s  %12s  %12s  %11s  %11s\n",
			"kind", "open s", "speedup", "load heap", "mmap heap", "qps", "par qps")
		for _, pt := range snap.Results {
			m := pt.Mapped
			if m == nil {
				continue
			}
			par := "-"
			if m.ParallelQueriesSec > 0 {
				par = fmt.Sprintf("%11.1f", m.ParallelQueriesSec)
			}
			fmt.Printf("%-8s  %10.6f  %8.1fx  %12d  %12d  %11.1f  %11s\n",
				pt.Kind, m.OpenSeconds, m.SpeedupVsLoad, m.LoadHeapBytes, m.OpenHeapBytes, m.QueriesSec, par)
		}
	}
	return writeBenchJSON(outPath, snap)
}

// measureMapped produces one mappedPoint: open latency, retained-heap
// deltas, warm serving throughput, and (sharded) the full-scatter
// throughput, verifying the mapped answers against the built index.
func measureMapped(
	openMapped, load func(string) (any, error),
	closeIx func(any) error,
	answer func(any, []gnn.Point) ([]gnn.Result, gnn.Cost, error),
	answerPar func(any, []gnn.Point) error,
	path string, loadS float64,
	queries [][]gnn.Point,
	built any,
) (*mappedPoint, error) {
	// Open latency: map + adopt, closing each round's mapping so file
	// descriptors don't accumulate across the adaptive rounds.
	var mapped any
	openS, err := measureSeconds(func() error {
		if mapped != nil {
			if err := closeIx(mapped); err != nil {
				return err
			}
		}
		ix, err := openMapped(path)
		mapped = ix
		return err
	})
	if err != nil {
		return nil, err
	}
	defer closeIx(mapped)

	// Verify before measuring throughput: the mapped index must answer
	// the sample bit-identically (results and per-query cost) to the
	// built one. This also forces the deferred verification, so the
	// timed passes below measure warm serving.
	for _, q := range queries {
		br, bc, berr := answer(built, q)
		mr, mc, merr := answer(mapped, q)
		if berr != nil || merr != nil {
			return nil, fmt.Errorf("verify: %v / %v", berr, merr)
		}
		if !reflect.DeepEqual(br, mr) || bc != mc {
			return nil, fmt.Errorf("mapped index diverged from the built index")
		}
	}

	// Retained-heap deltas, both charged after one query so the mapped
	// side pays its lazy verification and point-view slab.
	heapAfterQuery := func(open func(string) (any, error)) (int64, error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		ix, err := open(path)
		if err != nil {
			return 0, err
		}
		if _, _, err := answer(ix, queries[0]); err != nil {
			return 0, err
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
		runtime.KeepAlive(ix)
		return delta, closeIx(ix)
	}
	loadHeap, err := heapAfterQuery(load)
	if err != nil {
		return nil, err
	}
	openHeap, err := heapAfterQuery(openMapped)
	if err != nil {
		return nil, err
	}

	// Warm serving throughput, mapped vs copy-loaded.
	qps := func(ix any) (float64, error) {
		secs, err := measureSeconds(func() error {
			for _, q := range queries {
				if _, _, err := answer(ix, q); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return float64(len(queries)) / secs, nil
	}
	mappedQPS, err := qps(mapped)
	if err != nil {
		return nil, err
	}
	loaded, err := load(path)
	if err != nil {
		return nil, err
	}
	loadedQPS, err := qps(loaded)
	if err != nil {
		return nil, err
	}
	if err := closeIx(loaded); err != nil {
		return nil, err
	}

	mp := &mappedPoint{
		OpenSeconds: openS, SpeedupVsLoad: loadS / openS,
		LoadHeapBytes: loadHeap, OpenHeapBytes: openHeap,
		QueriesSec: mappedQPS, LoadQueriesSec: loadedQPS,
		Verified: true,
	}
	if answerPar != nil {
		secs, err := measureSeconds(func() error {
			for _, q := range queries {
				if err := answerPar(mapped, q); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		mp.ParallelQueriesSec = float64(len(queries)) / secs
		mp.ParallelSpeedup = mp.ParallelQueriesSec / mappedQPS
	}
	return mp, nil
}
