package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/snapshot"
	"gnn/internal/workload"
)

// snapshotBench is the JSON schema of the -snapshot-out file
// (BENCH_snapshot.json): cold-start serving from a persisted snapshot
// versus re-bulk-loading the same index from raw points, with full
// format/layout provenance so the numbers stay attributable across
// revisions.
type snapshotBench struct {
	benchEnv
	// FormatVersion and Layout record what exactly was persisted: the
	// snapshot format version and the serving layout it deserialises to.
	FormatVersion int             `json:"format_version"`
	Layout        string          `json:"layout"`
	Results       []snapshotPoint `json:"results"`
}

type snapshotPoint struct {
	// Kind is "plain" or "sharded"; Shards is 0 for plain.
	Kind   string `json:"kind"`
	Shards int    `json:"shards"`
	// BuildSeconds rebuilds the index from raw points (bulk load + pack) —
	// the cold-start path without persistence.
	BuildSeconds float64 `json:"build_seconds"`
	// WriteSeconds serialises the index; SnapshotBytes is the file size.
	WriteSeconds  float64 `json:"write_seconds"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	// LoadSeconds cold-starts from the snapshot file (read + decode +
	// validate + rebuild dynamic nodes).
	LoadSeconds float64 `json:"load_seconds"`
	// SpeedupLoadVsBuild is BuildSeconds / LoadSeconds — the cold-start
	// win persistence buys.
	SpeedupLoadVsBuild float64 `json:"speedup_load_vs_build"`
	// Verified confirms the loaded index answered a query sample with
	// bit-identical results and costs to the built one.
	Verified bool `json:"verified"`
}

// measureSeconds runs fn adaptively (at least minRounds, then until
// minWall) and returns the mean seconds per run.
func measureSeconds(fn func() error) (float64, error) {
	const minRounds, maxRounds, minWall = 3, 25, 1 * time.Second
	start := time.Now()
	rounds := 0
	for rounds < minRounds || (time.Since(start) < minWall && rounds < maxRounds) {
		if err := fn(); err != nil {
			return 0, err
		}
		rounds++
	}
	return time.Since(start).Seconds() / float64(rounds), nil
}

// runSnapshotBench measures cold-start load vs rebuild on a uniform
// n-point index (the acceptance workload: 100k points, load ≥ 10×
// faster than rebuild), for the plain index and a 4-shard ShardedIndex.
func runSnapshotBench(n int, seed int64, outPath string) error {
	d := dataset.GenerateUniform(fmt.Sprintf("uniform-%d", n), n, seed)
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	qs, err := workload.Generate(workload.Spec{
		N: benchGroupSize, AreaFraction: 0.08, Queries: 20,
		Workspace: dataset.Workspace(), Seed: seed,
	})
	if err != nil {
		return err
	}
	queries := make([][]gnn.Point, len(qs))
	for i, q := range qs {
		g := make([]gnn.Point, len(q.Points))
		for j, p := range q.Points {
			g[j] = gnn.Point(p)
		}
		queries[i] = g
	}

	dir, err := os.MkdirTemp("", "gnnbench-snapshot")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	snap := snapshotBench{
		benchEnv:      newBenchEnv(d.Name, n, 1.0),
		FormatVersion: snapshot.Version,
		Layout:        gnn.LayoutPacked.String(),
	}
	fmt.Printf("# cold-start: snapshot load vs rebuild — %d uniform points, format v%d\n\n", n, snapshot.Version)
	fmt.Printf("%-8s  %7s  %10s  %10s  %10s  %10s  %9s\n",
		"kind", "shards", "build s", "write s", "load s", "bytes", "speedup")

	type indexOps struct {
		kind   string
		shards int
		build  func() (any, error)
		write  func(ix any, path string) error
		load   func(path string) (any, error)
		answer func(ix any, q []gnn.Point) ([]gnn.Result, gnn.Cost, error)
	}
	plain := indexOps{
		kind: "plain",
		build: func() (any, error) {
			return gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
		},
		write: func(ix any, path string) error { return ix.(*gnn.Index).WriteSnapshotFile(path) },
		load:  func(path string) (any, error) { return gnn.OpenSnapshotFile(path) },
		answer: func(ix any, q []gnn.Point) ([]gnn.Result, gnn.Cost, error) {
			return ix.(*gnn.Index).GroupNNWithCost(q, gnn.WithK(benchK))
		},
	}
	sharded := indexOps{
		kind: "sharded", shards: 4,
		build: func() (any, error) {
			return gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{})
		},
		write: func(ix any, path string) error { return ix.(*gnn.ShardedIndex).WriteSnapshotFile(path) },
		load:  func(path string) (any, error) { return gnn.OpenShardedSnapshotFile(path) },
		answer: func(ix any, q []gnn.Point) ([]gnn.Result, gnn.Cost, error) {
			return ix.(*gnn.ShardedIndex).GroupNNWithCost(q, gnn.WithK(benchK), gnn.WithShards(1))
		},
	}

	for _, ops := range []indexOps{plain, sharded} {
		var built any
		buildS, err := measureSeconds(func() error {
			ix, err := ops.build()
			built = ix
			return err
		})
		if err != nil {
			return err
		}
		path := filepath.Join(dir, ops.kind+".snap")
		var writeS float64
		if writeS, err = measureSeconds(func() error { return ops.write(built, path) }); err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		var loaded any
		loadS, err := measureSeconds(func() error {
			ix, err := ops.load(path)
			loaded = ix
			return err
		})
		if err != nil {
			return err
		}

		verified := true
		for _, q := range queries {
			br, bc, berr := ops.answer(built, q)
			lr, lc, lerr := ops.answer(loaded, q)
			if berr != nil || lerr != nil {
				return fmt.Errorf("verify: %v / %v", berr, lerr)
			}
			if !reflect.DeepEqual(br, lr) || bc != lc {
				verified = false
			}
		}
		if !verified {
			return fmt.Errorf("%s: snapshot-loaded index diverged from the built index", ops.kind)
		}

		pt := snapshotPoint{
			Kind: ops.kind, Shards: ops.shards,
			BuildSeconds: buildS, WriteSeconds: writeS, SnapshotBytes: fi.Size(),
			LoadSeconds: loadS, SpeedupLoadVsBuild: buildS / loadS, Verified: verified,
		}
		snap.Results = append(snap.Results, pt)
		fmt.Printf("%-8s  %7d  %10.4f  %10.4f  %10.4f  %10d  %8.1fx\n",
			pt.Kind, pt.Shards, pt.BuildSeconds, pt.WriteSeconds, pt.LoadSeconds, pt.SnapshotBytes, pt.SpeedupLoadVsBuild)
	}
	return writeBenchJSON(outPath, snap)
}
