package main

import (
	"fmt"
	"time"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/workload"
)

// The -maxagg mode measures the dedicated aggregate-MAX kernel (minimum-
// enclosing-ball pruning, the default MAX path) head to head against the
// generic per-member pruning path (WithGenericMax) on a 100k uniform
// workload, sweeping group size × k × traversal. Both sides answer the
// identical queries with bit-identical results; the snapshot records
// ns/op and NA/op per side so the pruning win is a committed, gated
// number (cmd/benchdelta -max) rather than a claim.

type maxaggSnapshot struct {
	benchEnv
	Kind    string       `json:"kind"`
	Queries int          `json:"queries"`
	Cells   []maxaggCell `json:"cells"`
}

type maxaggCell struct {
	GroupSize int        `json:"group_size"`
	K         int        `json:"k"`
	Traversal string     `json:"traversal"`
	Dedicated maxaggSide `json:"dedicated"`
	Generic   maxaggSide `json:"generic"`
	// NARatio is dedicated NA/op over generic NA/op: < 1 means the MEB
	// bound pruned nodes the per-member bounds could not.
	NARatio float64 `json:"na_ratio"`
}

type maxaggSide struct {
	NsPerOp float64 `json:"ns_per_op"`
	NAPerOp float64 `json:"na_per_op"`
	// Per-op pruning splits from the explain trace: what the MEB bound
	// discarded (dedicated side only; always 0 on the generic side) and
	// what the heuristic-2/3 bounds discarded.
	NodesPrunedMEBPerOp  float64 `json:"nodes_pruned_meb_per_op"`
	PointsPrunedMEBPerOp float64 `json:"points_pruned_meb_per_op"`
	NodesPrunedH2PerOp   float64 `json:"nodes_pruned_h2_per_op"`
	NodesPrunedH3PerOp   float64 `json:"nodes_pruned_h3_per_op"`
}

// runMaxAgg builds the uniform fixture and measures the grid.
func runMaxAgg(numPoints, numQueries int, seed int64, outPath string) error {
	d := dataset.GenerateUniform(fmt.Sprintf("uniform-%dk", numPoints/1000), numPoints, seed)
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		return err
	}

	snap := maxaggSnapshot{
		benchEnv: newBenchEnv(d.Name, ix.Len(), 1.0),
		Kind:     "maxagg",
		Queries:  numQueries,
	}

	fmt.Printf("# aggregate-MAX kernel — dedicated (MEB) vs generic pruning, %s (%d points), %d queries/cell\n\n",
		d.Name, ix.Len(), numQueries)
	fmt.Printf("%-3s  %-2s  %-3s  %13s  %13s  %9s  %11s  %11s  %8s  %20s  %13s\n",
		"n", "k", "trv", "ded ns/op", "gen ns/op", "speedup", "ded na/op", "gen na/op", "na ratio",
		"ded meb(n/p) h2/h3", "gen h2/h3")

	measure := func(queries [][]gnn.Point, k int, df, generic bool) (maxaggSide, error) {
		opts := []gnn.QueryOption{
			gnn.WithK(k), gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist),
		}
		if df {
			opts = append(opts, gnn.WithDepthFirst())
		}
		if generic {
			opts = append(opts, gnn.WithGenericMax())
		}
		// Warmup doubles as the pruning census: one explained pass sums
		// what each bound discarded, off the timed loop.
		var mebN, mebP, h2, h3 int
		for _, q := range queries {
			_, ex, err := ix.GroupNNExplain(q, opts...)
			if err != nil {
				return maxaggSide{}, err
			}
			mebN += ex.Trace.NodesPrunedMEB
			mebP += ex.Trace.PointsPrunedMEB
			h2 += ex.Trace.NodesPrunedH2
			h3 += ex.Trace.NodesPrunedH3
		}
		ix.ResetCost()
		start := time.Now()
		const minRounds, maxRounds, minWall = 3, 40, 250 * time.Millisecond
		rounds := 0
		for rounds < minRounds || (time.Since(start) < minWall && rounds < maxRounds) {
			for _, q := range queries {
				if _, err := ix.GroupNN(q, opts...); err != nil {
					return maxaggSide{}, err
				}
			}
			rounds++
		}
		elapsed := time.Since(start)
		total := float64(rounds * len(queries))
		nq := float64(len(queries))
		return maxaggSide{
			NsPerOp:              float64(elapsed.Nanoseconds()) / total,
			NAPerOp:              float64(ix.Cost().LogicalAccesses) / total,
			NodesPrunedMEBPerOp:  float64(mebN) / nq,
			PointsPrunedMEBPerOp: float64(mebP) / nq,
			NodesPrunedH2PerOp:   float64(h2) / nq,
			NodesPrunedH3PerOp:   float64(h3) / nq,
		}, nil
	}

	for _, n := range []int{4, 16, 64} {
		qs, err := workload.Generate(workload.Spec{
			N: n, AreaFraction: 0.08, Queries: numQueries,
			Workspace: dataset.Workspace(), Seed: seed,
		})
		if err != nil {
			return err
		}
		queries := make([][]gnn.Point, len(qs))
		for i, q := range qs {
			group := make([]gnn.Point, len(q.Points))
			for j, p := range q.Points {
				group[j] = gnn.Point(p)
			}
			queries[i] = group
		}
		for _, k := range []int{1, 8} {
			for _, df := range []bool{false, true} {
				ded, err := measure(queries, k, df, false)
				if err != nil {
					return err
				}
				gen, err := measure(queries, k, df, true)
				if err != nil {
					return err
				}
				trv := "bf"
				if df {
					trv = "df"
				}
				cell := maxaggCell{
					GroupSize: n, K: k, Traversal: trv,
					Dedicated: ded, Generic: gen,
					NARatio: ded.NAPerOp / gen.NAPerOp,
				}
				snap.Cells = append(snap.Cells, cell)
				fmt.Printf("%-3d  %-2d  %-3s  %13.0f  %13.0f  %8.2fx  %11.1f  %11.1f  %8.3f  %20s  %13s\n",
					n, k, trv, ded.NsPerOp, gen.NsPerOp, gen.NsPerOp/ded.NsPerOp,
					ded.NAPerOp, gen.NAPerOp, cell.NARatio,
					fmt.Sprintf("%.0f/%.0f %.0f/%.0f", ded.NodesPrunedMEBPerOp, ded.PointsPrunedMEBPerOp,
						ded.NodesPrunedH2PerOp, ded.NodesPrunedH3PerOp),
					fmt.Sprintf("%.0f/%.0f", gen.NodesPrunedH2PerOp, gen.NodesPrunedH3PerOp))
			}
		}
	}

	var dedNA, genNA float64
	for _, c := range snap.Cells {
		dedNA += c.Dedicated.NAPerOp
		genNA += c.Generic.NAPerOp
	}
	fmt.Printf("\n# total NA/op: dedicated %.1f vs generic %.1f (%.1f%% fewer node accesses)\n",
		dedNA, genNA, 100*(1-dedNA/genNA))
	return writeBenchJSON(outPath, snap)
}
