// Command gnnbench regenerates the paper's experimental figures.
//
// Each figure of §5 (and each ablation documented in DESIGN.md) is
// reproduced as a pair of aligned tables — node accesses and CPU time —
// with one row per algorithm and one column per x-axis value, matching the
// series the paper plots.
//
// Usage:
//
//	gnnbench -fig 5.1              # one figure at paper scale
//	gnnbench -all -scale 0.1       # everything, 10% of the data
//	gnnbench -list                 # available experiment IDs
//
// Paper-scale runs (default scale 1.0) rebuild PP (24,493 points) and TS
// (194,971 points) and may take minutes for the disk-resident figures; use
// -scale 0.1 for a quick pass that preserves every qualitative shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gnn/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment ID to run (e.g. 5.1, 5.4, A1)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper size)")
		queries = flag.Int("queries", 100, "queries per workload (memory-resident figures)")
		seed    = flag.Int64("seed", 1, "generator seed")
		buffer  = flag.Int("buffer", 512, "LRU buffer pages per tree/file (0 = none)")
		budget  = flag.Int64("gcp-budget", 20_000_000, "GCP pair budget before a cell is DNF")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	if !*all && *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: gnnbench -fig <id> | -all | -list")
		flag.PrintDefaults()
		os.Exit(2)
	}
	env := experiments.NewEnv(experiments.Config{
		Scale:         *scale,
		Queries:       *queries,
		Seed:          *seed,
		BufferPages:   *buffer,
		GCPPairBudget: *budget,
	})
	fmt.Printf("# gnn benchmark harness — scale %g, %d queries/workload, seed %d\n\n",
		*scale, *queries, *seed)
	var err error
	if *all {
		err = experiments.RunAll(env, os.Stdout)
	} else {
		err = experiments.Run(env, *fig, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnbench:", err)
		os.Exit(1)
	}
}
