// Command gnnbench regenerates the paper's experimental figures.
//
// Each figure of §5 (and each ablation documented in DESIGN.md) is
// reproduced as a pair of aligned tables — node accesses and CPU time —
// with one row per algorithm and one column per x-axis value, matching the
// series the paper plots.
//
// Usage:
//
//	gnnbench -fig 5.1              # one figure at paper scale
//	gnnbench -all -scale 0.1       # everything, 10% of the data
//	gnnbench -list                 # available experiment IDs
//	gnnbench -parallel 8           # batch-engine throughput, 8 workers
//	gnnbench -allocs               # ns/op + allocs/op per algorithm×aggregate
//	gnnbench -maxagg               # dedicated vs generic aggregate-MAX kernel
//	gnnbench -telemetry            # plain vs explain-instrumented query overhead
//	gnnbench -snapshot             # cold-start: snapshot load vs rebuild
//
// Paper-scale runs (default scale 1.0) rebuild PP (24,493 points) and TS
// (194,971 points) and may take minutes for the disk-resident figures; use
// -scale 0.1 for a quick pass that preserves every qualitative shape.
//
// The -parallel N mode measures the concurrent batch query engine instead
// of reproducing a figure: it sweeps worker counts 1/2/4/NumCPU (plus N)
// over a fixed workload, reports queries/sec and steady-state allocations
// per query per worker count, and with -parallel-out writes the sweep as a
// JSON snapshot for tracking scaling across revisions.
//
// The -allocs mode measures the query kernels themselves: ns/op, allocs/op,
// B/op and node accesses per algorithm×aggregate on a warm index, written
// as JSON with -allocs-out (BENCH_alloc.json); -allocs-baseline embeds a
// previous snapshot so the trajectory is visible in one file.
//
// The -maxagg mode compares the dedicated aggregate-MAX kernel (minimum-
// enclosing-ball pruning) against the generic per-member path on a 100k
// uniform workload across group size × k × traversal, written as JSON
// with -maxagg-out (BENCH_max.json) and gated by cmd/benchdelta -max.
//
// The -snapshot mode measures cold start: bulk-loading a 100k-point index
// from raw points versus loading the equivalent persisted snapshot
// (README "Persistence"), for the plain and the sharded index, verifying
// bit-identical answers along the way; -snapshot-out writes
// BENCH_snapshot.json with format/layout provenance. Adding -mmap also
// measures the zero-copy open path (OpenSnapshotMapped): open latency,
// retained-heap footprint and serving throughput against the copying
// load of the same files.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/experiments"
	"gnn/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment ID to run (e.g. 5.1, 5.4, A1)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper size)")
		queries  = flag.Int("queries", 100, "queries per workload (memory-resident figures)")
		seed     = flag.Int64("seed", 1, "generator seed")
		buffer   = flag.Int("buffer", 512, "LRU buffer pages per tree/file (0 = none)")
		budget   = flag.Int64("gcp-budget", 20_000_000, "GCP pair budget before a cell is DNF")
		parallel = flag.Int("parallel", 0, "throughput mode: sweep batch workers up to N (0 = off)")
		pout     = flag.String("parallel-out", "", "write the -parallel sweep as JSON to this file")
		shards   = flag.Int("shards", 0, "sharded mode: sweep shard counts up to N against the unsharded baseline (0 = off)")
		sout     = flag.String("shards-out", "", "write the -shards sweep as JSON to this file")
		allocs   = flag.Bool("allocs", false, "allocation mode: ns/op and allocs/op per algorithm×aggregate")
		aout     = flag.String("allocs-out", "", "write the -allocs snapshot as JSON to this file")
		abase    = flag.String("allocs-baseline", "", "embed a previous -allocs snapshot as the baseline")
		telem    = flag.Bool("telemetry", false, "telemetry-overhead mode: plain GroupNN vs GroupNNExplain on the warm packed MBM kernel")
		tout     = flag.String("telemetry-out", "", "write the -telemetry measurement as JSON to this file (BENCH_telemetry.json)")
		maxagg   = flag.Bool("maxagg", false, "MAX-kernel mode: dedicated MEB pruning vs the generic path on a uniform workload")
		maxN     = flag.Int("maxagg-n", 100_000, "points for the -maxagg uniform fixture")
		mxout    = flag.String("maxagg-out", "", "write the -maxagg comparison as JSON to this file (BENCH_max.json)")
		layout   = flag.String("layout", "", "index layout to serve queries from: auto, dynamic, packed, or both (side-by-side; -allocs default)")
		snapMode = flag.Bool("snapshot", false, "cold-start mode: snapshot load vs rebuild time")
		snapN    = flag.Int("snapshot-n", 100_000, "points for the -snapshot cold-start index")
		snout    = flag.String("snapshot-out", "", "write the -snapshot measurement as JSON to this file")
		snapMmap = flag.Bool("mmap", false, "with -snapshot: also measure the zero-copy mmap open path")
		serveB   = flag.Bool("serve-bench", false, "serving mode: drive HTTP load against gnnserve, sweeping client counts")
		serveURL = flag.String("serve-url", "", "with -serve-bench: target a live gnnserve (default: in-process daemon over a generated snapshot)")
		serveC   = flag.Int("serve-clients", 16, "with -serve-bench: max concurrent clients (sweeps powers of two up to this)")
		serveDur = flag.Duration("serve-duration", 2*time.Second, "with -serve-bench: measurement window per client count")
		svout    = flag.String("serve-out", "", "write the -serve-bench sweep as JSON to this file")
		svbase   = flag.String("serve-baseline", "", "embed a previous -serve-bench sweep as the baseline (overhead delta)")
		mutateB  = flag.Bool("mutate", false, "mutation mode: query throughput under live insert/delete traffic, sweeping write rates × compaction thresholds")
		mutDur   = flag.Duration("mutate-duration", 2*time.Second, "with -mutate: measurement window per row")
		mout     = flag.String("mutate-out", "", "write the -mutate sweep as JSON to this file")
	)
	flag.Parse()

	layouts, err := resolveLayouts(*layout, *allocs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnbench:", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	if *snapMmap && !*snapMode {
		fmt.Fprintln(os.Stderr, "gnnbench: -mmap modifies -snapshot; add -snapshot")
		os.Exit(2)
	}
	if *serveB {
		if err := runServeBench(*serveURL, *serveC, *serveDur, *scale, *queries, *seed, *svout, *svbase); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *mutateB {
		if *layout != "" {
			// The mutated index serves from its packed base + overlay; a
			// pinned layout would mislabel what the sweep measures.
			fmt.Fprintln(os.Stderr, "gnnbench: -mutate measures the serving default; drop -layout")
			os.Exit(2)
		}
		if err := runMutate(*scale, *queries, *seed, *mutDur, *mout); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *snapMode {
		if *layout != "" {
			// A snapshot always persists (and loads back) the packed
			// layout; a pinned layout would mislabel the measurement.
			fmt.Fprintln(os.Stderr, "gnnbench: -snapshot measures the persisted packed layout; drop -layout")
			os.Exit(2)
		}
		if err := runSnapshotBench(*snapN, *seed, *snout, *snapMmap); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *allocs {
		if err := runAllocs(*scale, *queries, *seed, *aout, *abase, layouts); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *telem {
		if *layout != "" {
			// The overhead claim is about the serving default (packed MBM);
			// a pinned layout would gate a different kernel than the one the
			// daemon runs.
			fmt.Fprintln(os.Stderr, "gnnbench: -telemetry measures the packed serving default; drop -layout")
			os.Exit(2)
		}
		if err := runTelemetry(*scale, *queries, *seed, *tout); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *maxagg {
		if *layout != "" {
			// Both kernel paths serve from the packed default; NA is
			// layout-invariant by the bit-parity contract.
			fmt.Fprintln(os.Stderr, "gnnbench: -maxagg measures the serving default; drop -layout")
			os.Exit(2)
		}
		if err := runMaxAgg(*maxN, *queries, *seed, *mxout); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *parallel > 0 {
		if len(layouts) != 1 {
			fmt.Fprintln(os.Stderr, "gnnbench: -parallel supports a single -layout (auto, dynamic or packed)")
			os.Exit(2)
		}
		if err := runParallel(*parallel, *scale, *queries, *seed, *pout, layouts[0]); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if *shards > 0 {
		if *layout != "" {
			// Both index kinds serve from their packed default; a pinned
			// layout would measure something the sweep does not label.
			fmt.Fprintln(os.Stderr, "gnnbench: -shards measures the serving default; drop -layout")
			os.Exit(2)
		}
		if err := runShards(*shards, *scale, *queries, *seed, *sout); err != nil {
			fmt.Fprintln(os.Stderr, "gnnbench:", err)
			os.Exit(1)
		}
		return
	}
	if !*all && *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: gnnbench -fig <id> | -all | -list | -parallel N | -shards N")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *layout != "" {
		// The figure harness drives the library through its serving
		// default; accepting a layout here and ignoring it would mislabel
		// identical runs.
		fmt.Fprintln(os.Stderr, "gnnbench: -layout applies to -allocs and -parallel modes only")
		os.Exit(2)
	}
	env := experiments.NewEnv(experiments.Config{
		Scale:         *scale,
		Queries:       *queries,
		Seed:          *seed,
		BufferPages:   *buffer,
		GCPPairBudget: *budget,
	})
	fmt.Printf("# gnn benchmark harness — scale %g, %d queries/workload, seed %d\n\n",
		*scale, *queries, *seed)
	if *all {
		err = experiments.RunAll(env, os.Stdout)
	} else {
		err = experiments.Run(env, *fig, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnbench:", err)
		os.Exit(1)
	}
}

// resolveLayouts maps the -layout flag to the layout list a mode
// measures. The -allocs mode defaults to both layouts (the side-by-side
// comparison that BENCH_packed.json snapshots); everything else defaults
// to auto, the serving default.
func resolveLayouts(flag string, allocsMode bool) ([]gnn.Layout, error) {
	switch flag {
	case "":
		if allocsMode {
			return []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked}, nil
		}
		return []gnn.Layout{gnn.LayoutAuto}, nil
	case "auto":
		return []gnn.Layout{gnn.LayoutAuto}, nil
	case "dynamic":
		return []gnn.Layout{gnn.LayoutDynamic}, nil
	case "packed":
		return []gnn.Layout{gnn.LayoutPacked}, nil
	case "both":
		return []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked}, nil
	default:
		return nil, fmt.Errorf("unknown -layout %q (want auto, dynamic, packed or both)", flag)
	}
}

// parallelSnapshot is the JSON schema of the -parallel-out file; the
// shared headers live in emit.go.
type parallelSnapshot struct {
	benchEnv
	benchWorkload
	Layout  string          `json:"layout"`
	Results []parallelPoint `json:"results"`
}

type parallelPoint struct {
	Workers    int     `json:"workers"`
	QueriesSec float64 `json:"queries_per_sec"`
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup_vs_1"`
	// AllocsPerQuery is the steady-state heap allocation count per query
	// (measured on the warm pass), the number the zero-allocation kernel
	// work drives down; per-worker context reuse should keep it flat as
	// workers grow.
	AllocsPerQuery float64 `json:"allocs_per_query"`
}

// benchGroupSize and benchK are the paper's default workload parameters
// (n = 64, M = 8%, k = 8) shared by the -parallel and -allocs modes.
const benchGroupSize, benchK = 64, 8

// benchFixture builds the shared fixture of the throughput and allocation
// modes: the TS index at the requested scale plus a workload of GNN query
// groups. Both modes must measure the identical setup or their snapshots
// stop being comparable.
func benchFixture(scale float64, numQueries int, seed int64) (*dataset.Dataset, *gnn.Index, [][]gnn.Point, error) {
	d := dataset.GenerateTS(seed)
	if scale < 1 {
		n := int(float64(len(d.Points)) * scale)
		if n < 1 {
			n = 1
		}
		d = &dataset.Dataset{Name: d.Name, Points: d.Points[:n]}
	}
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		return nil, nil, nil, err
	}
	qs, err := workload.Generate(workload.Spec{
		N: benchGroupSize, AreaFraction: 0.08, Queries: numQueries,
		Workspace: dataset.Workspace(), Seed: seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	batch := make([][]gnn.Point, len(qs))
	for i, q := range qs {
		group := make([]gnn.Point, len(q.Points))
		for j, p := range q.Points {
			group[j] = gnn.Point(p)
		}
		batch[i] = group
	}
	return d, ix, batch, nil
}

// runParallel measures the batch engine's throughput: worker counts
// 1/2/4/NumCPU (plus the requested maximum) answering the same workload of
// GNN queries (n = 64, M = 8%, k = 8 — the paper's defaults) over TS.
func runParallel(maxWorkers int, scale float64, numQueries int, seed int64, outPath string, layout gnn.Layout) error {
	d, ix, batch, err := benchFixture(scale, numQueries, seed)
	if err != nil {
		return err
	}
	const groupSize, k = benchGroupSize, benchK

	sweep := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true, maxWorkers: true}
	workers := make([]int, 0, len(sweep))
	for w := range sweep {
		if w <= maxWorkers {
			workers = append(workers, w)
		}
	}
	sort.Ints(workers)

	snap := parallelSnapshot{
		benchEnv:      newBenchEnv(d.Name, ix.Len(), scale),
		benchWorkload: newBenchWorkload(len(batch)),
		Layout:        layout.String(),
	}
	fmt.Printf("# batch query engine throughput — %s (%d points), %d queries of n=%d, k=%d, layout %v\n\n",
		d.Name, ix.Len(), len(batch), groupSize, k, layout)
	fmt.Printf("%-8s  %12s  %10s  %8s  %14s\n", "workers", "queries/sec", "seconds", "speedup", "allocs/query")
	var base float64
	for _, w := range workers {
		// One warm-up pass, then the measured pass.
		ix.GroupNNBatch(batch, gnn.WithK(k), gnn.WithParallelism(w), gnn.WithLayout(layout))
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out := ix.GroupNNBatch(batch, gnn.WithK(k), gnn.WithParallelism(w), gnn.WithLayout(layout))
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		for _, r := range out {
			if r.Err != nil {
				return r.Err
			}
		}
		qps := float64(len(batch)) / elapsed.Seconds()
		if base == 0 {
			base = qps
		}
		pt := parallelPoint{
			Workers: w, QueriesSec: qps,
			Seconds: elapsed.Seconds(), Speedup: qps / base,
			AllocsPerQuery: float64(after.Mallocs-before.Mallocs) / float64(len(batch)),
		}
		snap.Results = append(snap.Results, pt)
		fmt.Printf("%-8d  %12.1f  %10.3f  %7.2fx  %14.1f\n", w, qps, pt.Seconds, pt.Speedup, pt.AllocsPerQuery)
	}
	return writeBenchJSON(outPath, snap)
}
