package main

import (
	"fmt"
	"runtime"
	"time"

	"gnn"
)

// The -telemetry mode proves the observability work costs nothing on the
// hot path. It measures the warm packed MBM kernel (the serving default)
// two ways in the same process — the plain GroupNN entry point and the
// instrumented GroupNNExplain entry point — and snapshots both sides so
// cmd/benchdelta -telemetry can gate two claims:
//
//  1. plain GroupNN still runs at its committed allocs/op (4) with all
//     the telemetry code compiled in, and
//  2. opting into an explain trace costs a bounded ns/op premium.
//
// Both sides are measured in alternating passes within one run, so the
// ratio between them is immune to machine-to-machine speed differences;
// per-side minimums over the passes damp scheduler noise.

type telemetrySnapshot struct {
	benchEnv
	benchWorkload
	Kind   string        `json:"kind"`
	Plain  telemetrySide `json:"plain"`
	Traced telemetrySide `json:"traced"`
	// TracedNsRatio is traced ns/op over plain ns/op (≥ 1 means tracing
	// costs time); TracedExtraAllocs is the per-query allocation count the
	// explain probe adds on top of the plain path.
	TracedNsRatio     float64 `json:"traced_ns_ratio"`
	TracedExtraAllocs float64 `json:"traced_extra_allocs_per_op"`
}

type telemetrySide struct {
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
}

// runTelemetry measures plain vs explained queries over the shared TS
// fixture (n = 64, M = 8%, k = 8 — the same workload BENCH_alloc.json
// snapshots) and writes BENCH_telemetry.json.
func runTelemetry(scale float64, numQueries int, seed int64, outPath string) error {
	d, ix, queries, err := benchFixture(scale, numQueries, seed)
	if err != nil {
		return err
	}
	opts := []gnn.QueryOption{
		gnn.WithK(benchK), gnn.WithLayout(gnn.LayoutPacked), gnn.WithAlgorithm(gnn.AlgoMBM),
	}

	// Warm both entry points so the measured passes see steady-state
	// scratch capacity on each.
	for _, q := range queries {
		if _, err := ix.GroupNN(q, opts...); err != nil {
			return err
		}
		if _, _, err := ix.GroupNNExplain(q, opts...); err != nil {
			return err
		}
	}

	measure := func(traced bool) (telemetrySide, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		const minRounds, maxRounds, minWall = 3, 40, 250 * time.Millisecond
		rounds := 0
		for rounds < minRounds || (time.Since(start) < minWall && rounds < maxRounds) {
			for _, q := range queries {
				var err error
				if traced {
					_, _, err = ix.GroupNNExplain(q, opts...)
				} else {
					_, err = ix.GroupNN(q, opts...)
				}
				if err != nil {
					return telemetrySide{}, err
				}
			}
			rounds++
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		total := float64(rounds * len(queries))
		return telemetrySide{
			NsPerOp:  float64(elapsed.Nanoseconds()) / total,
			AllocsOp: float64(after.Mallocs-before.Mallocs) / total,
			BytesOp:  float64(after.TotalAlloc-before.TotalAlloc) / total,
		}, nil
	}

	// Alternate the two sides so drift (thermal, GC pacing) hits both
	// equally; keep each side's fastest pass and cleanest allocation
	// count (the query's own allocations are deterministic — anything
	// above the minimum is a background goroutine or GC-internal
	// allocation that happened to land in the measured window).
	const passes = 5
	var plain, traced telemetrySide
	for i := 0; i < passes; i++ {
		p, err := measure(false)
		if err != nil {
			return err
		}
		tr, err := measure(true)
		if err != nil {
			return err
		}
		if i == 0 || p.NsPerOp < plain.NsPerOp {
			plain.NsPerOp = p.NsPerOp
		}
		if i == 0 || tr.NsPerOp < traced.NsPerOp {
			traced.NsPerOp = tr.NsPerOp
		}
		if i == 0 || p.AllocsOp < plain.AllocsOp {
			plain.AllocsOp, plain.BytesOp = p.AllocsOp, p.BytesOp
		}
		if i == 0 || tr.AllocsOp < traced.AllocsOp {
			traced.AllocsOp, traced.BytesOp = tr.AllocsOp, tr.BytesOp
		}
	}

	snap := telemetrySnapshot{
		benchEnv:          newBenchEnv(d.Name, ix.Len(), scale),
		benchWorkload:     newBenchWorkload(len(queries)),
		Kind:              "telemetry",
		Plain:             plain,
		Traced:            traced,
		TracedNsRatio:     traced.NsPerOp / plain.NsPerOp,
		TracedExtraAllocs: traced.AllocsOp - plain.AllocsOp,
	}
	fmt.Printf("# telemetry overhead — warm packed MBM, %s (%d points), %d queries of n=%d, k=%d\n\n",
		d.Name, ix.Len(), len(queries), benchGroupSize, benchK)
	fmt.Printf("%-8s  %12s  %12s  %12s\n", "side", "ns/op", "allocs/op", "B/op")
	fmt.Printf("%-8s  %12.0f  %12.1f  %12.1f\n", "plain", plain.NsPerOp, plain.AllocsOp, plain.BytesOp)
	fmt.Printf("%-8s  %12.0f  %12.1f  %12.1f\n", "traced", traced.NsPerOp, traced.AllocsOp, traced.BytesOp)
	fmt.Printf("\n# traced/plain ns ratio %.3f, extra allocs/op %.1f\n",
		snap.TracedNsRatio, snap.TracedExtraAllocs)
	return writeBenchJSON(outPath, snap)
}
