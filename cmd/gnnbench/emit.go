package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// benchEnv is the environment header shared by every BENCH_*.json
// snapshot (the -parallel, -allocs, -shards and -snapshot emitters), so
// the four schemas stay comparable and the metadata is declared once.
type benchEnv struct {
	Dataset    string  `json:"dataset"`
	NumPoints  int     `json:"num_points"`
	Scale      float64 `json:"scale"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
}

func newBenchEnv(dataset string, numPoints int, scale float64) benchEnv {
	return benchEnv{
		Dataset: dataset, NumPoints: numPoints, Scale: scale,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// benchWorkload is the query-workload header of the modes that replay
// the paper's default workload (n = 64, M = 8%, k = 8).
type benchWorkload struct {
	Queries   int `json:"queries"`
	GroupSize int `json:"group_size"`
	K         int `json:"k"`
}

func newBenchWorkload(queries int) benchWorkload {
	return benchWorkload{Queries: queries, GroupSize: benchGroupSize, K: benchK}
}

// writeBenchJSON marshals a snapshot to path (indented, trailing
// newline) and reports where it went; a "" path is a no-op so callers
// can emit unconditionally.
func writeBenchJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nsnapshot written to %s\n", path)
	return nil
}
