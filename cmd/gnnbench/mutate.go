package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gnn"
)

// mutateSnapshot is the JSON schema of the -mutate-out file: query
// throughput and latency under concurrent write traffic, swept over
// write ratios × compaction thresholds. The S=read-only row is the
// overlay-free baseline the degradation is measured against.
type mutateSnapshot struct {
	benchEnv
	benchWorkload
	Readers int           `json:"readers"`
	Writers int           `json:"writers"`
	Results []mutatePoint `json:"results"`
}

type mutatePoint struct {
	// WritesPerSec is the offered write rate; 0 is the read-only baseline.
	WritesPerSec int `json:"writes_per_sec"`
	// CompactThreshold is the background compactor's trigger; 0 = no
	// compactor (the overlay grows for the whole window).
	CompactThreshold int     `json:"compact_threshold"`
	QueriesSec       float64 `json:"queries_per_sec"`
	Seconds          float64 `json:"seconds"`
	// SlowdownVsRead is this row's query throughput relative to the
	// read-only baseline (1.0 = no degradation).
	SlowdownVsRead float64 `json:"slowdown_vs_readonly"`
	// Compactions is how many background cycles ran inside the window.
	Compactions uint64 `json:"compactions"`
	// FinalDelta is the overlay size when the window closed — how far
	// behind the compactor ended up (graceful-degradation signal).
	FinalDelta int `json:"final_delta"`
	// NAPerQuery is the mean node accesses per query; the overlay's
	// delta+pending sources show up here before they show up in latency.
	NAPerQuery float64 `json:"na_per_query"`
}

// runMutate measures queries under live write traffic: reader
// goroutines replay the paper workload while writers insert/delete at a
// fixed offered rate, with and without background compaction.
func runMutate(scale float64, numQueries int, seed int64, window time.Duration, outPath string) error {
	d, baseIx, batch, err := benchFixture(scale, numQueries, seed)
	if err != nil {
		return err
	}
	_ = baseIx // rebuilt per row: each row needs an index without prior overlay history
	const groupSize, k = benchGroupSize, benchK
	readers, writers := 4, 2

	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}

	type rowCfg struct {
		writesPerSec int
		threshold    int
	}
	rows := []rowCfg{
		{0, 0},       // read-only baseline
		{500, 0},     // writes, overlay grows unchecked
		{500, 256},   // writes, compactor keeps the overlay small
		{2000, 256},  // heavier writes, same threshold
		{2000, 4096}, // heavier writes, lazier compactor
	}

	snap := mutateSnapshot{
		benchEnv:      newBenchEnv(d.Name, len(pts), scale),
		benchWorkload: newBenchWorkload(len(batch)),
		Readers:       readers,
		Writers:       writers,
	}
	fmt.Printf("# queries under write traffic — %s (%d points), %d-point groups, k=%d, %d readers / %d writers, %v window\n\n",
		d.Name, len(pts), groupSize, k, readers, writers, window)
	fmt.Printf("%-12s  %-10s  %12s  %9s  %12s  %12s  %11s\n",
		"writes/sec", "threshold", "queries/sec", "slowdown", "compactions", "final delta", "NA/query")

	var baseQPS float64
	for _, row := range rows {
		pt, err := runMutateRow(pts, batch, k, row.writesPerSec, row.threshold, readers, writers, window, seed)
		if err != nil {
			return err
		}
		if baseQPS == 0 {
			baseQPS = pt.QueriesSec
		}
		pt.SlowdownVsRead = pt.QueriesSec / baseQPS
		snap.Results = append(snap.Results, pt)
		thr := fmt.Sprintf("%d", row.threshold)
		if row.threshold == 0 {
			thr = "off"
		}
		fmt.Printf("%-12d  %-10s  %12.1f  %8.2fx  %12d  %12d  %11.1f\n",
			row.writesPerSec, thr, pt.QueriesSec, pt.SlowdownVsRead, pt.Compactions, pt.FinalDelta, pt.NAPerQuery)
	}
	return writeBenchJSON(outPath, snap)
}

func runMutateRow(pts []gnn.Point, batch [][]gnn.Point, k, writesPerSec, threshold, readers, writers int, window time.Duration, seed int64) (mutatePoint, error) {
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		return mutatePoint{}, err
	}
	if threshold > 0 {
		if err := ix.StartCompactor(gnn.CompactorConfig{Threshold: threshold}); err != nil {
			return mutatePoint{}, err
		}
	}
	ix.ResetCost()

	var queries atomic.Int64
	var queryErr atomic.Pointer[error]
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ix.GroupNN(batch[i%len(batch)], gnn.WithK(k)); err != nil {
					queryErr.Store(&err)
					return
				}
				queries.Add(1)
				i++
			}
		}(r)
	}

	if writesPerSec > 0 {
		// Each writer inserts at its share of the offered rate and deletes
		// its previous insert half the time, so tombstones are exercised
		// and the live set stays near the base size.
		interval := time.Duration(int64(time.Second) * int64(writers) / int64(writesPerSec))
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				tick := time.NewTicker(interval)
				defer tick.Stop()
				id := int64(1_000_000 * (w + 1))
				var prev gnn.Point
				var prevID int64
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					if prevID != 0 && rng.Intn(2) == 0 {
						ix.Delete(prev, prevID)
						prevID = 0
						continue
					}
					p := gnn.Point{rng.Float64() * 10_000, rng.Float64() * 10_000}
					if err := ix.Insert(p, id); err != nil {
						queryErr.Store(&err)
						return
					}
					prev, prevID = p, id
					id++
				}
			}(w)
		}
	}

	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	ix.StopCompactor()

	if ep := queryErr.Load(); ep != nil {
		return mutatePoint{}, *ep
	}
	n := queries.Load()
	stats := ix.Stats()
	pt := mutatePoint{
		WritesPerSec:     writesPerSec,
		CompactThreshold: threshold,
		QueriesSec:       float64(n) / elapsed.Seconds(),
		Seconds:          elapsed.Seconds(),
		Compactions:      stats.CompactGen,
		FinalDelta:       stats.Delta + stats.Tombstones,
	}
	if n > 0 {
		pt.NAPerQuery = float64(ix.Cost().NodeAccesses) / float64(n)
	}
	return pt, ix.Close()
}
