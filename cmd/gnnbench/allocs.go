package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gnn"
)

// allocSnapshot is the JSON schema of the -allocs-out file. It records the
// per-query CPU and allocation cost of every algorithm×aggregate kernel so
// the performance trajectory of the query hot paths is trackable across
// revisions. When a previous snapshot is supplied via -allocs-baseline, it
// is embedded under "baseline" so the win (or regression) is visible in one
// file.
type allocSnapshot struct {
	benchEnv
	benchWorkload
	Baseline []allocCell `json:"baseline,omitempty"`
	Cells    []allocCell `json:"cells"`
}

type allocCell struct {
	Algorithm string  `json:"algorithm"`
	Aggregate string  `json:"aggregate"`
	Layout    string  `json:"layout,omitempty"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  float64 `json:"allocs_per_op"`
	BytesOp   float64 `json:"bytes_per_op"`
	NAPerOp   float64 `json:"na_per_op"`
}

// allocGridCell is one measured kernel configuration.
type allocGridCell struct {
	algo string
	agg  gnn.Aggregate
	opts []gnn.QueryOption
}

// allocGrid is the algorithm×aggregate matrix the snapshot measures: every
// memory-resident kernel under every aggregate its pruning bounds support.
func allocGrid() []allocGridCell {
	var grid []allocGridCell
	for _, agg := range []gnn.Aggregate{gnn.SumDist, gnn.MaxDist, gnn.MinDist} {
		grid = append(grid,
			allocGridCell{"MBM-BF", agg, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(agg)}},
			allocGridCell{"MBM-DF", agg, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(agg), gnn.WithDepthFirst()}},
			allocGridCell{"MQM", agg, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithAggregate(agg)}},
		)
	}
	grid = append(grid, allocGridCell{"SPM", gnn.SumDist, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM)}})
	return grid
}

// runAllocs measures ns/op, allocs/op, B/op and NA/op per kernel cell and
// layout over the paper's default workload (n = 64, M = 8%, k = 8) on TS —
// the same fixture the -parallel mode measures, via benchFixture. With two
// layouts it additionally prints the packed-vs-dynamic comparison table.
func runAllocs(scale float64, numQueries int, seed int64, outPath, baselinePath string, layouts []gnn.Layout) error {
	d, ix, queries, err := benchFixture(scale, numQueries, seed)
	if err != nil {
		return err
	}
	const groupSize, k = benchGroupSize, benchK

	snap := allocSnapshot{
		benchEnv:      newBenchEnv(d.Name, ix.Len(), scale),
		benchWorkload: newBenchWorkload(len(queries)),
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline snapshot: %w", err)
		}
		var base allocSnapshot
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing baseline snapshot: %w", err)
		}
		snap.Baseline = base.Cells
	}

	fmt.Printf("# query kernel cost — %s (%d points), %d queries of n=%d, k=%d\n\n",
		d.Name, ix.Len(), len(queries), groupSize, k)
	fmt.Printf("%-8s  %-4s  %-8s  %12s  %12s  %12s  %10s\n",
		"algo", "agg", "layout", "ns/op", "allocs/op", "B/op", "na/op")
	measure := func(cell allocGridCell, layout gnn.Layout) (allocCell, error) {
		opts := append([]gnn.QueryOption{gnn.WithK(k), gnn.WithLayout(layout)}, cell.opts...)
		// Warm-up pass: fills buffer-free caches, pools and grows scratch to
		// steady-state capacity so the measurement sees the warm path.
		for _, q := range queries {
			if _, err := ix.GroupNN(q, opts...); err != nil {
				return allocCell{}, fmt.Errorf("%s/%s/%v: %w", cell.algo, cell.agg, layout, err)
			}
		}
		ix.ResetCost()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		// Adaptive rounds: at least 3, then keep going until the cell has
		// run long enough to dampen scheduler noise (cheap MBM cells would
		// otherwise finish in tens of milliseconds and jitter by 20%+).
		const minRounds, maxRounds, minWall = 3, 40, 500 * time.Millisecond
		rounds := 0
		for rounds < minRounds || (time.Since(start) < minWall && rounds < maxRounds) {
			for _, q := range queries {
				if _, err := ix.GroupNN(q, opts...); err != nil {
					return allocCell{}, fmt.Errorf("%s/%s/%v: %w", cell.algo, cell.agg, layout, err)
				}
			}
			rounds++
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		total := float64(rounds * len(queries))
		return allocCell{
			Algorithm: cell.algo,
			Aggregate: cell.agg.String(),
			Layout:    layout.String(),
			NsPerOp:   float64(elapsed.Nanoseconds()) / total,
			AllocsOp:  float64(after.Mallocs-before.Mallocs) / total,
			BytesOp:   float64(after.TotalAlloc-before.TotalAlloc) / total,
			NAPerOp:   float64(ix.Cost().LogicalAccesses) / total,
		}, nil
	}
	for _, cell := range allocGrid() {
		for _, layout := range layouts {
			c, err := measure(cell, layout)
			if err != nil {
				return err
			}
			snap.Cells = append(snap.Cells, c)
			fmt.Printf("%-8s  %-4s  %-8s  %12.0f  %12.1f  %12.1f  %10.1f\n",
				c.Algorithm, c.Aggregate, c.Layout, c.NsPerOp, c.AllocsOp, c.BytesOp, c.NAPerOp)
		}
	}
	printLayoutComparison(snap.Cells)
	return writeBenchJSON(outPath, snap)
}

// printLayoutComparison renders the packed-vs-dynamic side-by-side table
// when the measured cells cover both layouts.
func printLayoutComparison(cells []allocCell) {
	type key struct{ algo, agg string }
	dyn := map[key]allocCell{}
	pkd := map[key]allocCell{}
	var order []key
	for _, c := range cells {
		k := key{c.Algorithm, c.Aggregate}
		switch c.Layout {
		case "dynamic":
			if _, ok := dyn[k]; !ok {
				order = append(order, k)
			}
			dyn[k] = c
		case "packed":
			pkd[k] = c
		}
	}
	if len(dyn) == 0 || len(pkd) == 0 {
		return
	}
	fmt.Printf("\n# layout comparison — dynamic vs packed (same queries, identical NA by construction)\n\n")
	fmt.Printf("%-8s  %-4s  %14s  %14s  %8s  %10s\n",
		"algo", "agg", "dynamic ns/op", "packed ns/op", "speedup", "na/op")
	for _, k := range order {
		d, ok1 := dyn[k]
		p, ok2 := pkd[k]
		if !ok1 || !ok2 {
			continue
		}
		fmt.Printf("%-8s  %-4s  %14.0f  %14.0f  %7.2fx  %10.1f\n",
			k.algo, k.agg, d.NsPerOp, p.NsPerOp, d.NsPerOp/p.NsPerOp, p.NAPerOp)
	}
}
