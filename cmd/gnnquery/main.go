// Command gnnquery runs an ad-hoc GNN query against a dataset file or a
// pre-built index snapshot.
//
// The data file is in gnngen's binary or CSV format — rebuilt into an
// index on every run — or a snapshot emitted by gnngen -format snapshot
// / the -snapshot flag, which cold-starts without rebuilding (plain and
// sharded snapshots are detected automatically). Query points are given
// inline as "x,y;x,y;..." or read from a second file. Examples:
//
//	gnngen -dataset PP -out pp.bin
//	gnnquery -data pp.bin -query "2000,3000;2500,3500;1800,2900" -k 3
//	gnnquery -data pp.bin -queryfile users.csv -k 5 -algo MQM -agg max
//	gnnquery -data pp.bin -snapshot pp.snap        # convert once ...
//	gnnquery -data pp.snap -query "2000,3000" -k 3 # ... serve instantly
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/snapshot"
)

// server is the query surface gnnquery needs, satisfied by both
// gnn.Index and gnn.ShardedIndex.
type server interface {
	GroupNN(query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, error)
	Cost() gnn.Cost
	ResetCost()
	Stats() gnn.Stats
	Len() int
}

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file (bin, csv or snapshot; required)")
		queryStr  = flag.String("query", "", `inline query points "x,y;x,y;..."`)
		queryPath = flag.String("queryfile", "", "query points file (bin or csv)")
		k         = flag.Int("k", 1, "number of neighbors")
		algoName  = flag.String("algo", "MBM", "MQM | SPM | MBM | brute")
		aggName   = flag.String("agg", "sum", "sum | max | min")
		showCost  = flag.Bool("cost", false, "print node-access counts")
		snapOut   = flag.String("snapshot", "", "write the loaded index as a snapshot to this file")
	)
	flag.Parse()
	if *dataPath == "" || (*queryStr == "" && *queryPath == "" && *snapOut == "") {
		fmt.Fprintln(os.Stderr, `usage: gnnquery -data pp.bin -query "x,y;x,y" [-k 3] | -data pp.bin -snapshot pp.snap`)
		flag.PrintDefaults()
		os.Exit(2)
	}

	ix, err := openIndex(*dataPath)
	fail(err)

	if *snapOut != "" {
		fail(writeSnapshotOut(ix, *snapOut))
		if *queryStr == "" && *queryPath == "" {
			return
		}
	}

	var query []gnn.Point
	if *queryStr != "" {
		query, err = parseInline(*queryStr)
	} else {
		var qd *dataset.Dataset
		qd, err = loadDataset(*queryPath)
		if err == nil {
			for _, p := range qd.Points {
				query = append(query, gnn.Point(p))
			}
		}
	}
	fail(err)

	opts := []gnn.QueryOption{gnn.WithK(*k)}
	switch strings.ToUpper(*algoName) {
	case "MQM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMQM))
	case "SPM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoSPM))
	case "MBM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMBM))
	case "BRUTE":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoBruteForce))
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	switch strings.ToLower(*aggName) {
	case "sum":
	case "max":
		opts = append(opts, gnn.WithAggregate(gnn.MaxDist))
	case "min":
		opts = append(opts, gnn.WithAggregate(gnn.MinDist))
	default:
		fail(fmt.Errorf("unknown aggregate %q", *aggName))
	}

	ix.ResetCost()
	res, err := ix.GroupNN(query, opts...)
	fail(err)
	fmt.Printf("%d data points, %d query points, k=%d, %s/%s\n",
		ix.Len(), len(query), *k, strings.ToUpper(*algoName), strings.ToLower(*aggName))
	for i, r := range res {
		fmt.Printf("%2d. id=%-8d point=(%.2f, %.2f)  dist=%.3f\n",
			i+1, r.ID, r.Point[0], r.Point[1], r.Dist)
	}
	if *showCost {
		c := ix.Cost()
		fmt.Printf("cost: %d node accesses (%d logical, %d buffer hits)\n",
			c.NodeAccesses, c.LogicalAccesses, c.BufferHits)
	}
}

// openIndex loads the data file as an index: snapshot files (detected by
// sniffing their header) are opened directly — zero rebuild, plain or
// sharded decided by the header's kind field so the file is decoded
// exactly once — while dataset files are bulk-loaded as before. For
// snapshots it prints what was loaded, via Stats.
func openIndex(path string) (server, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, snapshot.SniffLen)
	n, err := io.ReadFull(f, head)
	f.Close()
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		// A short file is just not a snapshot (the dataset path decides
		// what it is), but a real read error must not be mistaken for one.
		return nil, fmt.Errorf("sniffing %s: %w", path, err)
	}
	if kind, ok := snapshot.Sniff(head[:n]); ok {
		var sv server
		var err error
		if kind == snapshot.KindSharded {
			sv, err = gnn.OpenShardedSnapshotFile(path)
		} else {
			sv, err = gnn.OpenSnapshotFile(path)
		}
		if err != nil {
			return nil, err
		}
		s := sv.Stats()
		fmt.Printf("loaded snapshot %s: %d points, dim %d, %s, %d nodes, ~%d KiB arena\n",
			path, s.Points, s.Dim, shardsLabel(s.Shards), s.Nodes, s.ArenaBytes/1024)
		return sv, nil
	}
	data, err := loadDataset(path)
	if err != nil {
		return nil, err
	}
	pts := make([]gnn.Point, len(data.Points))
	for i, p := range data.Points {
		pts[i] = gnn.Point(p)
	}
	return gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
}

func shardsLabel(s int) string {
	if s == 0 {
		return "unsharded"
	}
	return fmt.Sprintf("%d shards", s)
}

// writeSnapshotOut persists the loaded index.
func writeSnapshotOut(sv server, path string) error {
	var err error
	switch ix := sv.(type) {
	case *gnn.Index:
		err = ix.WriteSnapshotFile(path)
	case *gnn.ShardedIndex:
		err = ix.WriteSnapshotFile(path)
	default:
		err = fmt.Errorf("unknown index kind %T", sv)
	}
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s (%d bytes)\n", path, fi.Size())
	return nil
}

func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return dataset.ReadCSV(f, path)
	}
	return dataset.Read(f)
}

func parseInline(s string) ([]gnn.Point, error) {
	var out []gnn.Point
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		coords := strings.Split(part, ",")
		if len(coords) != 2 {
			return nil, fmt.Errorf("bad query point %q (want x,y)", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(coords[0]), 64)
		if err != nil {
			return nil, err
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(coords[1]), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, gnn.Point{x, y})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no query points in %q", s)
	}
	return out, nil
}

// fail exits non-zero on error. Corruption gets its own message and
// exit code (3), so operators and scripts can tell a damaged snapshot
// from a usage error: a checksum/truncation failure means the file must
// be regenerated, not the command line fixed.
func fail(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, gnn.ErrSnapshotChecksum) || errors.Is(err, gnn.ErrSnapshotTruncated) || errors.Is(err, gnn.ErrSnapshotCorrupt) {
		fmt.Fprintf(os.Stderr, "gnnquery: snapshot is corrupt: %v\n", err)
		fmt.Fprintln(os.Stderr, "gnnquery: the file is damaged or was cut short mid-write; regenerate it (gnngen -format snapshot, or gnnquery -snapshot) — do not retry with different flags")
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "gnnquery:", err)
	os.Exit(1)
}
