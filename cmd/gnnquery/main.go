// Command gnnquery runs an ad-hoc GNN query against a dataset file.
//
// The data file is in gnngen's binary or CSV format; query points are
// given inline as "x,y;x,y;..." or read from a second file. Example:
//
//	gnngen -dataset PP -out pp.bin
//	gnnquery -data pp.bin -query "2000,3000;2500,3500;1800,2900" -k 3
//	gnnquery -data pp.bin -queryfile users.csv -k 5 -algo MQM -agg max
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gnn"
	"gnn/internal/dataset"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file (bin or csv, required)")
		queryStr  = flag.String("query", "", `inline query points "x,y;x,y;..."`)
		queryPath = flag.String("queryfile", "", "query points file (bin or csv)")
		k         = flag.Int("k", 1, "number of neighbors")
		algoName  = flag.String("algo", "MBM", "MQM | SPM | MBM | brute")
		aggName   = flag.String("agg", "sum", "sum | max | min")
		showCost  = flag.Bool("cost", false, "print node-access counts")
	)
	flag.Parse()
	if *dataPath == "" || (*queryStr == "" && *queryPath == "") {
		fmt.Fprintln(os.Stderr, `usage: gnnquery -data pp.bin -query "x,y;x,y" [-k 3]`)
		flag.PrintDefaults()
		os.Exit(2)
	}

	data, err := loadDataset(*dataPath)
	fail(err)
	var query []gnn.Point
	if *queryStr != "" {
		query, err = parseInline(*queryStr)
	} else {
		var qd *dataset.Dataset
		qd, err = loadDataset(*queryPath)
		if err == nil {
			for _, p := range qd.Points {
				query = append(query, gnn.Point(p))
			}
		}
	}
	fail(err)

	pts := make([]gnn.Point, len(data.Points))
	for i, p := range data.Points {
		pts[i] = gnn.Point(p)
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	fail(err)

	opts := []gnn.QueryOption{gnn.WithK(*k)}
	switch strings.ToUpper(*algoName) {
	case "MQM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMQM))
	case "SPM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoSPM))
	case "MBM":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMBM))
	case "BRUTE":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoBruteForce))
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	switch strings.ToLower(*aggName) {
	case "sum":
	case "max":
		opts = append(opts, gnn.WithAggregate(gnn.MaxDist))
	case "min":
		opts = append(opts, gnn.WithAggregate(gnn.MinDist))
	default:
		fail(fmt.Errorf("unknown aggregate %q", *aggName))
	}

	ix.ResetCost()
	res, err := ix.GroupNN(query, opts...)
	fail(err)
	fmt.Printf("%d data points, %d query points, k=%d, %s/%s\n",
		ix.Len(), len(query), *k, strings.ToUpper(*algoName), strings.ToLower(*aggName))
	for i, r := range res {
		fmt.Printf("%2d. id=%-8d point=(%.2f, %.2f)  dist=%.3f\n",
			i+1, r.ID, r.Point[0], r.Point[1], r.Dist)
	}
	if *showCost {
		c := ix.Cost()
		fmt.Printf("cost: %d node accesses (%d logical, %d buffer hits)\n",
			c.NodeAccesses, c.LogicalAccesses, c.BufferHits)
	}
}

func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return dataset.ReadCSV(f, path)
	}
	return dataset.Read(f)
}

func parseInline(s string) ([]gnn.Point, error) {
	var out []gnn.Point
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		coords := strings.Split(part, ",")
		if len(coords) != 2 {
			return nil, fmt.Errorf("bad query point %q (want x,y)", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(coords[0]), 64)
		if err != nil {
			return nil, err
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(coords[1]), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, gnn.Point{x, y})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no query points in %q", s)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnquery:", err)
		os.Exit(1)
	}
}
