// Command gnnserve is the GNN query daemon: it memory-maps an index
// snapshot (plain or sharded, detected from the header) and serves
// group nearest neighbor queries over an HTTP JSON API.
//
//	gnngen -dataset PP -n 500000 -format snapshot -out pp.snap
//	gnnserve -snapshot pp.snap -addr :8080
//
//	curl -s localhost:8080/v1/groupnn -d '{"query":[[2000,3000],[2500,3500]],"k":3}'
//
// Endpoints: POST /v1/groupnn (one query group; set "trace": true to
// get the query's explain report — stage timings, pruning counters,
// provenance — in the response), POST /v1/batch (many groups, one
// deadline), POST /v1/insert and /v1/delete (writes into the delta
// overlay while the mapped base keeps serving), GET /v1/stats
// (counters, latency percentiles, reload/compaction health and process
// runtime stats), GET /metrics (Prometheus text exposition), GET
// /debug/slowlog (the N slowest queries with their explain traces), GET
// /debug/pprof/* (the standard Go profiles), GET /healthz (process
// liveness), GET /readyz (serving readiness; flips 503 during drain),
// POST /admin/reload (hot snapshot swap; also on SIGHUP).
//
// Every request gets an X-Request-ID (inbound IDs are honored) and one
// structured log line on stderr (-log-format text|json, -log-level).
//
// Failure behavior: requests carry a deadline (timeout_ms, clamped to
// -max-timeout) that propagates into the traversal kernels — slow or
// disconnected clients get 504/499 within a bounded number of node
// visits; load beyond -max-inflight waits at most -queue-wait then gets
// 429 + Retry-After; a reload of a corrupt snapshot is rejected (409)
// while the live index keeps serving; SIGTERM flips /readyz, drains
// inflight requests up to -drain-timeout, waits out any in-flight
// background compaction (so no rotation temp file is orphaned), then
// unmaps and exits.
//
// With -compact-threshold N, writes are folded into a fresh packed base
// by a background compactor once the overlay reaches N entries, and the
// serving snapshot file is rotated crash-safely (write temp → fsync →
// verify → rename) so a restart picks up the folded state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gnn/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		snap        = flag.String("snapshot", "", "index snapshot file to serve (required)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2×GOMAXPROCS)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for an execution slot before 429")
		defTimeout  = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "upper clamp on request timeout_ms")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
		bufferPages = flag.Int("buffer", 0, "LRU buffer pages for access accounting (0 = none)")
		eager       = flag.Bool("eager-verify", false, "verify the initial snapshot open eagerly")
		compactAt   = flag.Int("compact-threshold", 0, "overlay size triggering background compaction (0 = disabled)")
		compactIvl  = flag.Duration("compact-interval", 50*time.Millisecond, "background compactor poll period")
		slowlogN    = flag.Int("slowlog", 32, "slowest queries retained at /debug/slowlog")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		logLevel    = flag.String("log-level", "info", "log level: debug|info|warn|error")
	)
	flag.Parse()
	if *snap == "" {
		fmt.Fprintln(os.Stderr, "usage: gnnserve -snapshot pp.snap [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnserve: %v\n", err)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		SnapshotPath:     *snap,
		MaxInflight:      *maxInflight,
		QueueWait:        *queueWait,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		DrainTimeout:     *drain,
		BufferPages:      *bufferPages,
		EagerVerify:      *eager,
		CompactThreshold: *compactAt,
		CompactInterval:  *compactIvl,
		SlowLogSize:      *slowlogN,
		Logger:           logger,
	})
	if err != nil {
		logger.Error("opening snapshot failed", "path", *snap, "error", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "snapshot", *snap, "addr", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("listener failed", "error", err)
				os.Exit(1)
			}
			return
		case sig := <-sigc:
			switch sig {
			case syscall.SIGHUP:
				if h, err := srv.Reload(""); err != nil {
					logger.Warn("reload rejected, serving previous snapshot", "error", err)
				} else {
					logger.Info("reloaded", "generation", h.Generation())
				}
				continue
			default: // SIGTERM / SIGINT: graceful drain
				logger.Info("draining", "signal", sig.String(), "timeout", srv.DrainTimeout().String())
				srv.NotReady()
				ctx, cancel := context.WithTimeout(context.Background(), srv.DrainTimeout())
				if err := hs.Shutdown(ctx); err != nil {
					logger.Warn("drain cut short", "error", err)
				}
				cancel()
				if err := srv.Close(); err != nil {
					logger.Warn("closing index failed", "error", err)
				}
				logger.Info("stopped")
				return
			}
		}
	}
}

// newLogger builds the daemon's structured logger on stderr.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}
