// Command gnnserve is the GNN query daemon: it memory-maps an index
// snapshot (plain or sharded, detected from the header) and serves
// group nearest neighbor queries over an HTTP JSON API.
//
//	gnngen -dataset PP -n 500000 -format snapshot -out pp.snap
//	gnnserve -snapshot pp.snap -addr :8080
//
//	curl -s localhost:8080/v1/groupnn -d '{"query":[[2000,3000],[2500,3500]],"k":3}'
//
// Endpoints: POST /v1/groupnn (one query group), POST /v1/batch (many
// groups, one deadline), POST /v1/insert and /v1/delete (writes into
// the delta overlay while the mapped base keeps serving), GET /v1/stats
// (counters, latency percentiles, reload and compaction health), GET
// /healthz (process liveness), GET /readyz (serving readiness; flips
// 503 during drain), POST /admin/reload (hot snapshot swap; also on
// SIGHUP).
//
// Failure behavior: requests carry a deadline (timeout_ms, clamped to
// -max-timeout) that propagates into the traversal kernels — slow or
// disconnected clients get 504/499 within a bounded number of node
// visits; load beyond -max-inflight waits at most -queue-wait then gets
// 429 + Retry-After; a reload of a corrupt snapshot is rejected (409)
// while the live index keeps serving; SIGTERM flips /readyz, drains
// inflight requests up to -drain-timeout, waits out any in-flight
// background compaction (so no rotation temp file is orphaned), then
// unmaps and exits.
//
// With -compact-threshold N, writes are folded into a fresh packed base
// by a background compactor once the overlay reaches N entries, and the
// serving snapshot file is rotated crash-safely (write temp → fsync →
// verify → rename) so a restart picks up the folded state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gnn/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		snap        = flag.String("snapshot", "", "index snapshot file to serve (required)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2×GOMAXPROCS)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for an execution slot before 429")
		defTimeout  = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "upper clamp on request timeout_ms")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
		bufferPages = flag.Int("buffer", 0, "LRU buffer pages for access accounting (0 = none)")
		eager       = flag.Bool("eager-verify", false, "verify the initial snapshot open eagerly")
		compactAt   = flag.Int("compact-threshold", 0, "overlay size triggering background compaction (0 = disabled)")
		compactIvl  = flag.Duration("compact-interval", 50*time.Millisecond, "background compactor poll period")
	)
	flag.Parse()
	if *snap == "" {
		fmt.Fprintln(os.Stderr, "usage: gnnserve -snapshot pp.snap [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		SnapshotPath:     *snap,
		MaxInflight:      *maxInflight,
		QueueWait:        *queueWait,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		DrainTimeout:     *drain,
		BufferPages:      *bufferPages,
		EagerVerify:      *eager,
		CompactThreshold: *compactAt,
		CompactInterval:  *compactIvl,
	})
	if err != nil {
		log.Fatalf("gnnserve: opening %s: %v", *snap, err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("gnnserve: serving %s on %s", *snap, *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("gnnserve: %v", err)
			}
			return
		case sig := <-sigc:
			switch sig {
			case syscall.SIGHUP:
				if h, err := srv.Reload(""); err != nil {
					log.Printf("gnnserve: reload rejected, serving previous snapshot: %v", err)
				} else {
					log.Printf("gnnserve: reloaded generation %d", h.Generation())
				}
				continue
			default: // SIGTERM / SIGINT: graceful drain
				log.Printf("gnnserve: %v: draining (up to %v)", sig, srv.DrainTimeout())
				srv.NotReady()
				ctx, cancel := context.WithTimeout(context.Background(), srv.DrainTimeout())
				if err := hs.Shutdown(ctx); err != nil {
					log.Printf("gnnserve: drain cut short: %v", err)
				}
				cancel()
				if err := srv.Close(); err != nil {
					log.Printf("gnnserve: closing index: %v", err)
				}
				log.Printf("gnnserve: stopped")
				return
			}
		}
	}
}
