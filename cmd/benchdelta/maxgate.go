package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The -max gate reads a BENCH_max.json produced by gnnbench -maxagg and
// enforces the dedicated aggregate-MAX kernel's contract: on every
// measured cell the MEB-pruned path reads at most as many nodes per
// query as the generic per-member path (the bound only ever removes
// candidates), and over the whole grid it reads strictly fewer (the
// kernel must actually earn its keep on the uniform workload, not merely
// break even). NA/op is deterministic for a fixed fixture, so the
// tolerance exists only for float accumulation, not machine noise.

type maxFile struct {
	Kind  string `json:"kind"`
	Cells []struct {
		GroupSize int    `json:"group_size"`
		K         int    `json:"k"`
		Traversal string `json:"traversal"`
		Dedicated struct {
			NAPerOp float64 `json:"na_per_op"`
		} `json:"dedicated"`
		Generic struct {
			NAPerOp float64 `json:"na_per_op"`
		} `json:"generic"`
	} `json:"cells"`
}

// runMaxGate returns the process exit code.
func runMaxGate(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		return 1
	}
	var f maxFile
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %s: %v\n", path, err)
		return 1
	}
	if f.Kind != "maxagg" {
		fmt.Fprintf(os.Stderr, "benchdelta: %s: kind %q, want \"maxagg\"\n", path, f.Kind)
		return 1
	}
	if len(f.Cells) == 0 {
		fmt.Fprintf(os.Stderr, "benchdelta: %s: no cells\n", path)
		return 1
	}
	const eps = 1e-9
	failed := false
	var dedTotal, genTotal float64
	fmt.Printf("%-3s  %-2s  %-3s  %11s  %11s  %8s  %s\n",
		"n", "k", "trv", "ded na/op", "gen na/op", "ratio", "verdict")
	for _, c := range f.Cells {
		dedTotal += c.Dedicated.NAPerOp
		genTotal += c.Generic.NAPerOp
		verdict := "ok"
		if c.Dedicated.NAPerOp > c.Generic.NAPerOp*(1+eps) {
			verdict = "FAIL (dedicated reads more nodes)"
			failed = true
		}
		fmt.Printf("%-3d  %-2d  %-3s  %11.1f  %11.1f  %8.3f  %s\n",
			c.GroupSize, c.K, c.Traversal, c.Dedicated.NAPerOp, c.Generic.NAPerOp,
			c.Dedicated.NAPerOp/c.Generic.NAPerOp, verdict)
	}
	fmt.Printf("\ntotal NA/op: dedicated %.1f, generic %.1f\n", dedTotal, genTotal)
	if dedTotal >= genTotal {
		fmt.Fprintln(os.Stderr, "benchdelta: dedicated MAX kernel does not beat the generic path in aggregate")
		return 1
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdelta: MAX-kernel pruning regression detected")
		return 1
	}
	fmt.Println("benchdelta: dedicated MAX kernel strictly below the generic path")
	return 0
}
