package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The -telemetry gate reads a BENCH_telemetry.json produced by gnnbench
// -telemetry and enforces the observability contract:
//
//  1. the plain GroupNN hot path still runs at exactly its committed
//     allocation count (4 allocs/op on the warm packed MBM kernel) with
//     every metric, trace hook and explain probe compiled in;
//  2. against a committed BENCH_alloc.json baseline measured on the same
//     workload (-telemetry-baseline), the plain ns/op regressed by at
//     most -telemetry-max-ratio (default 1.02 — the "metrics cost ≤2%"
//     claim; absolute times only compare on the machine that measured
//     the baseline, so the check is skipped when workloads differ);
//  3. the opt-in explain trace (GroupNNExplain) stays below a loose
//     ceiling over the plain path (-telemetry-traced-ratio) — tracing
//     does real extra work (stage clocks, heap drain classification),
//     but it must remain the same order of magnitude as the query.
//
// Allocation counts are deterministic, so check 1 runs with zero
// tolerance. Check 3's ratio comes from alternating passes within one
// gnnbench run, so it is machine-independent.

// telemetryPlainAllocs is the committed hot-path contract: the warm
// packed MBM kernel allocates exactly this many times per query (see
// BENCH_alloc.json).
const telemetryPlainAllocs = 4

type telemetrySideFile struct {
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

type telemetryFile struct {
	Kind      string            `json:"kind"`
	NumPoints int               `json:"num_points"`
	Queries   int               `json:"queries"`
	GroupSize int               `json:"group_size"`
	K         int               `json:"k"`
	Plain     telemetrySideFile `json:"plain"`
	Traced    telemetrySideFile `json:"traced"`
}

// allocBaselineFile mirrors the BENCH_alloc.json fields the gate reads.
type allocBaselineFile struct {
	NumPoints int `json:"num_points"`
	Queries   int `json:"queries"`
	GroupSize int `json:"group_size"`
	K         int `json:"k"`
	Cells     []struct {
		Algorithm string  `json:"algorithm"`
		Aggregate string  `json:"aggregate"`
		Layout    string  `json:"layout"`
		NsPerOp   float64 `json:"ns_per_op"`
	} `json:"cells"`
}

// runTelemetryGate returns the process exit code. basePath may be "" to
// skip the committed-baseline comparison; maxRatio bounds plain ns/op
// against the baseline, tracedRatio bounds traced/plain ns/op.
func runTelemetryGate(path, basePath string, maxRatio, tracedRatio float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		return 1
	}
	var f telemetryFile
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %s: %v\n", path, err)
		return 1
	}
	if f.Kind != "telemetry" {
		fmt.Fprintf(os.Stderr, "benchdelta: %s: kind %q, want \"telemetry\"\n", path, f.Kind)
		return 1
	}
	if f.Plain.NsPerOp <= 0 || f.Traced.NsPerOp <= 0 {
		fmt.Fprintf(os.Stderr, "benchdelta: %s: empty measurement\n", path)
		return 1
	}

	failed := false
	fmt.Printf("%-26s  %12s  %12s  %s\n", "check", "measured", "limit", "verdict")
	check := func(name string, measured, limit float64, ok bool) {
		verdict := "ok"
		if !ok {
			verdict = fmt.Sprintf("FAIL (limit %.2f)", limit)
			failed = true
		}
		fmt.Printf("%-26s  %12.3f  %12.2f  %s\n", name, measured, limit, verdict)
	}

	check("plain allocs/op", f.Plain.AllocsOp, telemetryPlainAllocs,
		f.Plain.AllocsOp == telemetryPlainAllocs)

	if basePath != "" {
		baseNs, skip := baselinePlainNs(basePath, &f)
		if skip != "" {
			fmt.Printf("%-26s  %s\n", "plain ns vs baseline", skip)
		} else {
			ratio := f.Plain.NsPerOp / baseNs
			check("plain ns vs baseline", ratio, maxRatio, ratio <= maxRatio)
		}
	}

	ratio := f.Traced.NsPerOp / f.Plain.NsPerOp
	check("traced/plain ns ratio", ratio, tracedRatio, ratio <= tracedRatio)
	fmt.Printf("%-26s  %12.1f\n", "traced extra allocs/op", f.Traced.AllocsOp-f.Plain.AllocsOp)

	if failed {
		fmt.Fprintln(os.Stderr, "benchdelta: telemetry overhead regression detected")
		return 1
	}
	fmt.Printf("benchdelta: hot path holds %d allocs/op with telemetry compiled in\n", telemetryPlainAllocs)
	return 0
}

// baselinePlainNs extracts the packed MBM-BF/sum ns/op from a committed
// BENCH_alloc.json, or a non-empty skip reason when the comparison would
// not be apples-to-apples (different workload — absolute times only
// compare on the same fixture).
func baselinePlainNs(path string, f *telemetryFile) (float64, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Sprintf("skipped (%v)", err)
	}
	var base allocBaselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Sprintf("skipped (%s: %v)", path, err)
	}
	if base.NumPoints != f.NumPoints || base.Queries != f.Queries ||
		base.GroupSize != f.GroupSize || base.K != f.K {
		return 0, fmt.Sprintf("skipped (baseline workload %dpts/%dq differs from %dpts/%dq)",
			base.NumPoints, base.Queries, f.NumPoints, f.Queries)
	}
	for _, c := range base.Cells {
		if c.Algorithm == "MBM-BF" && c.Aggregate == "sum" && c.Layout == "packed" {
			return c.NsPerOp, ""
		}
	}
	return 0, "skipped (no packed MBM-BF/sum cell in baseline)"
}
