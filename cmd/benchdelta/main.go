// Command benchdelta gates snapshot open-time regressions: it compares
// the cold-start cells of a freshly measured BENCH_snapshot.json
// against a committed baseline and fails when the current numbers
// regress beyond a tolerance.
//
// Two kinds of checks run per result cell (matched by kind):
//
//   - Absolute: current load_seconds (and mapped.open_seconds when both
//     files carry mapped cells) must not exceed the baseline by more
//     than -tolerance ×. Absolute times vary across machines, so the
//     default tolerance is generous; tighten it for same-machine runs.
//   - Relative: when the current file has mapped cells, the mapped open
//     must stay at or below -max-open-fraction of the copying load of
//     the same file (default 0.10 — the zero-copy open's contract).
//     This ratio is machine-independent, so it holds even when the
//     baseline was measured elsewhere.
//
// A second, independent gate runs with -max: it reads a BENCH_max.json
// from gnnbench -maxagg and fails unless the dedicated aggregate-MAX
// kernel's NA/op stays at or below the generic path's on every cell and
// strictly below it in total (see maxgate.go).
//
// A third gate runs with -telemetry: it reads a BENCH_telemetry.json
// from gnnbench -telemetry and fails unless the plain GroupNN hot path
// still runs at exactly 4 allocs/op with the observability layer
// compiled in, stays within -telemetry-max-ratio of a same-workload
// committed BENCH_alloc.json baseline, and the opt-in explain trace
// costs at most -telemetry-traced-ratio × the plain ns/op (see
// telemetrygate.go).
//
// Usage:
//
//	benchdelta -baseline BENCH_snapshot.json -current /tmp/new.json
//	benchdelta -baseline BENCH_snapshot.json -current new.json -tolerance 1.5
//	benchdelta -max BENCH_max.json
//	benchdelta -telemetry BENCH_telemetry.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// deltaFile mirrors the BENCH_snapshot.json cells this gate reads; the
// full schema lives in cmd/gnnbench.
type deltaFile struct {
	NumPoints int    `json:"num_points"`
	NumCPU    int    `json:"num_cpu"`
	Results   []cell `json:"results"`
}

type cell struct {
	Kind        string  `json:"kind"`
	LoadSeconds float64 `json:"load_seconds"`
	Mapped      *struct {
		OpenSeconds float64 `json:"open_seconds"`
	} `json:"mapped"`
}

func readDelta(path string) (*deltaFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f deltaFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_snapshot.json", "committed baseline snapshot")
		currPath  = flag.String("current", "", "freshly measured snapshot to gate")
		tolerance = flag.Float64("tolerance", 2.0, "max allowed current/baseline ratio for absolute open times")
		openFrac  = flag.Float64("max-open-fraction", 0.10, "max allowed mapped-open / copying-load ratio in the current file")
		maxPath   = flag.String("max", "", "gate a BENCH_max.json instead: dedicated MAX-kernel NA/op must stay at or below the generic path on every cell and strictly below in total")
		telPath   = flag.String("telemetry", "", "gate a BENCH_telemetry.json instead: plain GroupNN must hold 4 allocs/op and a bounded ns premium")
		telBase   = flag.String("telemetry-baseline", "", "with -telemetry: committed BENCH_alloc.json to compare the plain ns/op against (same-workload runs only)")
		telRatio  = flag.Float64("telemetry-max-ratio", 1.02, "with -telemetry: max allowed plain-ns/baseline-ns ratio")
		telTraced = flag.Float64("telemetry-traced-ratio", 2.0, "with -telemetry: max allowed traced/plain ns ratio")
	)
	flag.Parse()
	if *maxPath != "" {
		os.Exit(runMaxGate(*maxPath))
	}
	if *telPath != "" {
		os.Exit(runTelemetryGate(*telPath, *telBase, *telRatio, *telTraced))
	}
	if *currPath == "" {
		fmt.Fprintln(os.Stderr, "benchdelta: -current is required")
		os.Exit(2)
	}
	base, err := readDelta(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	curr, err := readDelta(*currPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	if base.NumPoints != curr.NumPoints {
		// Absolute comparisons only make sense on the same workload; the
		// relative gate below still runs.
		fmt.Printf("note: baseline measured %d points, current %d — skipping absolute checks\n",
			base.NumPoints, curr.NumPoints)
	}

	byKind := map[string]cell{}
	for _, c := range base.Results {
		byKind[c.Kind] = c
	}

	fmt.Printf("%-8s  %-22s  %12s  %12s  %9s  %s\n", "kind", "check", "baseline", "current", "ratio", "verdict")
	failed := false
	check := func(kind, name string, baseV, currV, limit float64) {
		ratio := currV / baseV
		verdict := "ok"
		if ratio > limit {
			verdict = fmt.Sprintf("FAIL (> %.2f)", limit)
			failed = true
		}
		fmt.Printf("%-8s  %-22s  %12.6f  %12.6f  %8.2fx  %s\n", kind, name, baseV, currV, ratio, verdict)
	}
	for _, c := range curr.Results {
		b, ok := byKind[c.Kind]
		if !ok {
			fmt.Printf("%-8s  no baseline cell — skipped\n", c.Kind)
			continue
		}
		if base.NumPoints == curr.NumPoints {
			check(c.Kind, "load_seconds", b.LoadSeconds, c.LoadSeconds, *tolerance)
			if b.Mapped != nil && c.Mapped != nil {
				check(c.Kind, "mapped.open_seconds", b.Mapped.OpenSeconds, c.Mapped.OpenSeconds, *tolerance)
			}
		}
		if c.Mapped != nil {
			// The machine-independent contract: mapped open stays a small
			// fraction of the copying load measured in the same run.
			frac := c.Mapped.OpenSeconds / c.LoadSeconds
			verdict := "ok"
			if frac > *openFrac {
				verdict = fmt.Sprintf("FAIL (> %.2f)", *openFrac)
				failed = true
			}
			fmt.Printf("%-8s  %-22s  %12s  %12.6f  %8.4f   %s\n", c.Kind, "open/load fraction", "-", frac, frac, verdict)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdelta: open-time regression detected")
		os.Exit(1)
	}
	fmt.Println("benchdelta: all open-time cells within tolerance")
}
