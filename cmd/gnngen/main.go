// Command gnngen generates the experiment datasets and writes them to disk
// in the library's binary format, as CSV, or as a ready-to-serve index
// snapshot (see the README's "Persistence" section).
//
// Usage:
//
//	gnngen -dataset PP -out pp.bin
//	gnngen -dataset TS -out ts.csv -format csv
//	gnngen -dataset uniform -n 50000 -out u.bin
//	gnngen -dataset TS -out ts.snap -format snapshot          # packed index
//	gnngen -dataset TS -out ts4.snap -format snapshot -shards 4
package main

import (
	"flag"
	"fmt"
	"os"

	"gnn"
	"gnn/internal/dataset"
)

func main() {
	var (
		name     = flag.String("dataset", "PP", "PP | TS | uniform | clustered | polyline")
		n        = flag.Int("n", 10000, "cardinality for synthetic generators")
		groups   = flag.Int("groups", 100, "clusters/polylines for synthetic generators")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (required)")
		format   = flag.String("format", "bin", "bin | csv | snapshot")
		shards   = flag.Int("shards", 0, "snapshot format: build a sharded index with that many shards (0 = plain)")
		capacity = flag.Int("node-capacity", 0, "snapshot format: R*-tree node capacity (0 = default)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: gnngen -dataset PP -out pp.bin")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if (*shards != 0 || *capacity != 0) && *format != "snapshot" {
		fmt.Fprintln(os.Stderr, "gnngen: -shards and -node-capacity apply to -format snapshot only")
		os.Exit(2)
	}

	var d *dataset.Dataset
	switch *name {
	case "PP":
		d = dataset.GeneratePP(*seed)
	case "TS":
		d = dataset.GenerateTS(*seed)
	case "uniform":
		d = dataset.GenerateUniform("uniform", *n, *seed)
	case "clustered":
		d = dataset.GenerateClustered("clustered", *n, *groups, *seed)
	case "polyline":
		d = dataset.GeneratePolylines("polyline", *n, *groups, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gnngen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if *format == "snapshot" {
		if err := writeSnapshot(d, *out, *shards, *capacity); err != nil {
			fmt.Fprintln(os.Stderr, "gnngen:", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnngen:", err)
		os.Exit(1)
	}
	defer f.Close()
	switch *format {
	case "bin":
		err = d.Write(f)
	case "csv":
		err = d.WriteCSV(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnngen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d points (%s)\n", *out, d.Len(), d.Name)
}

// writeSnapshot bulk-loads an index over the generated points and
// serialises it, so gnnquery (or any embedder) can cold-start from the
// file without re-building.
func writeSnapshot(d *dataset.Dataset, out string, shards, capacity int) error {
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	cfg := gnn.IndexConfig{NodeCapacity: capacity}
	var stats gnn.Stats
	if shards > 0 {
		sx, err := gnn.BuildShardedIndex(pts, nil, shards, cfg)
		if err != nil {
			return err
		}
		if err := sx.WriteSnapshotFile(out); err != nil {
			return err
		}
		stats = sx.Stats()
	} else {
		ix, err := gnn.BuildIndex(pts, nil, cfg)
		if err != nil {
			return err
		}
		if err := ix.WriteSnapshotFile(out); err != nil {
			return err
		}
		stats = ix.Stats()
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: snapshot of %d points (%s), %d shards, %d nodes, %d bytes\n",
		out, stats.Points, d.Name, stats.Shards, stats.Nodes, fi.Size())
	return nil
}
