// Command gnngen generates the experiment datasets and writes them to disk
// in the library's binary format or as CSV.
//
// Usage:
//
//	gnngen -dataset PP -out pp.bin
//	gnngen -dataset TS -out ts.csv -format csv
//	gnngen -dataset uniform -n 50000 -out u.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"gnn/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "PP", "PP | TS | uniform | clustered | polyline")
		n      = flag.Int("n", 10000, "cardinality for synthetic generators")
		groups = flag.Int("groups", 100, "clusters/polylines for synthetic generators")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output file (required)")
		format = flag.String("format", "bin", "bin | csv")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: gnngen -dataset PP -out pp.bin")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var d *dataset.Dataset
	switch *name {
	case "PP":
		d = dataset.GeneratePP(*seed)
	case "TS":
		d = dataset.GenerateTS(*seed)
	case "uniform":
		d = dataset.GenerateUniform("uniform", *n, *seed)
	case "clustered":
		d = dataset.GenerateClustered("clustered", *n, *groups, *seed)
	case "polyline":
		d = dataset.GeneratePolylines("polyline", *n, *groups, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gnngen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnngen:", err)
		os.Exit(1)
	}
	defer f.Close()
	switch *format {
	case "bin":
		err = d.Write(f)
	case "csv":
		err = d.WriteCSV(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnngen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d points (%s)\n", *out, d.Len(), d.Name)
}
