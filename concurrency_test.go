// Concurrency tests for the per-query execution-context refactor: many
// goroutines fire mixed read operations at one shared Index (with and
// without an LRU buffer) and every answer must match the serial run, while
// the per-query costs sum exactly to the index-wide aggregate. Run with
// -race; the suite is its primary consumer.
package gnn_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gnn"
)

// concurrencyFixture builds a shared index and a deterministic workload.
func concurrencyFixture(t testing.TB, bufferPages int) (*gnn.Index, [][]gnn.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	pts := make([]gnn.Point, 4000)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{BufferPages: bufferPages})
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]gnn.Point, 24)
	for g := range groups {
		qs := make([]gnn.Point, 8)
		base := gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for i := range qs {
			qs[i] = gnn.Point{base[0] + rng.Float64()*120, base[1] + rng.Float64()*120}
		}
		groups[g] = qs
	}
	return ix, groups
}

// concurrentOp answers one query group through one of the mixed read paths
// and returns its results plus its per-query cost.
func concurrentOp(ix *gnn.Index, qs []gnn.Point, op int) ([]gnn.Result, gnn.Cost, error) {
	switch op % 4 {
	case 0: // MBM (best-first, the default engine)
		return ix.GroupNNWithCost(qs, gnn.WithK(3), gnn.WithAlgorithm(gnn.AlgoMBM))
	case 1: // MQM: many incremental point-NN streams at once
		return ix.GroupNNWithCost(qs, gnn.WithK(3), gnn.WithAlgorithm(gnn.AlgoMQM))
	case 2: // plain best-first point NN
		return ix.NearestNeighborsWithCost(qs[0], 3)
	default: // incremental GNN iterator, drained for 3 results
		it, err := ix.GroupNNIterator(qs)
		if err != nil {
			return nil, gnn.Cost{}, err
		}
		var out []gnn.Result
		for len(out) < 3 {
			r, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, r)
		}
		return out, it.Cost(), nil
	}
}

func TestConcurrentReadsMatchSerial(t *testing.T) {
	const goroutines = 8
	const opsPerGoroutine = 48
	for _, bufferPages := range []int{0, 256} {
		t.Run(fmt.Sprintf("buffer=%d", bufferPages), func(t *testing.T) {
			ix, groups := concurrencyFixture(t, bufferPages)

			// Serial reference: one answer per (group, op-kind) cell.
			want := make(map[[2]int][]gnn.Result)
			for g := range groups {
				for op := 0; op < 4; op++ {
					res, _, err := concurrentOp(ix, groups[g], op)
					if err != nil {
						t.Fatal(err)
					}
					want[[2]int{g, op}] = res
				}
			}

			// Concurrent phase: track the aggregate delta from here on.
			ix.ResetCost()
			costs := make([]gnn.Cost, goroutines)
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPerGoroutine; i++ {
						g := (w*opsPerGoroutine + i) % len(groups)
						op := (w + i) % 4
						res, cost, err := concurrentOp(ix, groups[g], op)
						if err != nil {
							errs <- fmt.Errorf("worker %d op %d: %w", w, op, err)
							return
						}
						if !reflect.DeepEqual(res, want[[2]int{g, op}]) {
							errs <- fmt.Errorf("worker %d: group %d op %d diverged from serial run", w, g, op)
							return
						}
						costs[w].Add(cost)
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Sum of per-query costs must equal the aggregate exactly, even
			// under a shared LRU buffer (the hit/miss split is racy, but
			// every access lands on both sides with the same outcome).
			var sum gnn.Cost
			for _, c := range costs {
				sum.Add(c)
			}
			if sum != ix.Cost() {
				t.Fatalf("per-query cost sum %+v != aggregate %+v", sum, ix.Cost())
			}
			if sum.LogicalAccesses == 0 {
				t.Fatal("concurrent phase charged no accesses")
			}
			if sum.NodeAccesses+sum.BufferHits != sum.LogicalAccesses {
				t.Fatalf("inconsistent cost %+v", sum)
			}
			if bufferPages == 0 && sum.BufferHits != 0 {
				t.Fatalf("buffer hits without a buffer: %+v", sum)
			}
		})
	}
}

// TestGroupNNBatchMatchesSerial drives the batch engine across worker
// counts and checks it returns exactly the serial answers with exact
// per-query costs.
func TestGroupNNBatchMatchesSerial(t *testing.T) {
	ix, groups := concurrencyFixture(t, 0)
	want := make([][]gnn.Result, len(groups))
	wantCost := make([]gnn.Cost, len(groups))
	for g := range groups {
		res, cost, err := ix.GroupNNWithCost(groups[g], gnn.WithK(4))
		if err != nil {
			t.Fatal(err)
		}
		want[g], wantCost[g] = res, cost
	}
	for _, workers := range []int{0, 1, 2, 8} {
		ix.ResetCost()
		got := ix.GroupNNBatch(groups, gnn.WithK(4), gnn.WithParallelism(workers))
		if len(got) != len(groups) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(got), len(groups))
		}
		var sum gnn.Cost
		for g := range got {
			if got[g].Err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, g, got[g].Err)
			}
			if !reflect.DeepEqual(got[g].Results, want[g]) {
				t.Fatalf("workers=%d query %d diverged from serial run", workers, g)
			}
			if got[g].Cost != wantCost[g] {
				t.Fatalf("workers=%d query %d: cost %+v, want %+v", workers, g, got[g].Cost, wantCost[g])
			}
			sum.Add(got[g].Cost)
		}
		if sum != ix.Cost() {
			t.Fatalf("workers=%d: batch cost sum %+v != aggregate %+v", workers, sum, ix.Cost())
		}
	}
}

// TestGroupNNBatchPerQueryErrors: one bad query must not poison the batch.
func TestGroupNNBatchPerQueryErrors(t *testing.T) {
	ix, groups := concurrencyFixture(t, 0)
	queries := [][]gnn.Point{groups[0], nil, groups[1]}
	got := ix.GroupNNBatch(queries, gnn.WithParallelism(2))
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("good queries failed: %v, %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Fatal("empty query group did not fail")
	}
}

// TestConcurrentDiskQueries exercises the disk-resident read path under
// concurrency: a shared QuerySet and index answer the same F-MBM/F-MQM
// query from several goroutines.
func TestConcurrentDiskQueries(t *testing.T) {
	ix, groups := concurrencyFixture(t, 0)
	flat := make([]gnn.Point, 0, 24*8)
	for _, g := range groups {
		flat = append(flat, g...)
	}
	qs, err := gnn.NewQuerySet(flat, gnn.QuerySetConfig{BlockPoints: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []gnn.DiskAlgorithm{gnn.DiskFMQM, gnn.DiskFMBM} {
		want, _, err := ix.GroupNNFromSetWithCost(qs, algo, gnn.WithK(2))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, _, err := ix.GroupNNFromSetWithCost(qs, algo, gnn.WithK(2))
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("%v: concurrent result diverged", algo)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}
