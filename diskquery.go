package gnn

import (
	"fmt"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

// DiskAlgorithm selects the processing method for disk-resident query
// sets.
type DiskAlgorithm int

const (
	// DiskAuto follows the paper's guidance (§5.2 summary): F-MQM when
	// the query set partitions into few blocks, F-MBM otherwise.
	DiskAuto DiskAlgorithm = iota
	// DiskFMQM is the file-multiple query method (§4.2).
	DiskFMQM
	// DiskFMBM is the file-minimum bounding method (§4.3).
	DiskFMBM
)

// DefaultAutoBlockThreshold is the default block count at which DiskAuto
// switches from F-MQM to F-MBM. The paper's PP query set yields 3 blocks
// (F-MQM wins) and its TS query set 20 blocks (F-MBM wins); the crossover
// sits between. Tune it per workload with
// QuerySetConfig.AutoBlockThreshold.
const DefaultAutoBlockThreshold = 8

// autoDiskAlgorithm resolves DiskAuto for a query set of the given block
// count under the given crossover threshold.
func autoDiskAlgorithm(blocks, threshold int) DiskAlgorithm {
	if blocks <= threshold {
		return DiskFMQM
	}
	return DiskFMBM
}

// String names the disk algorithm.
func (a DiskAlgorithm) String() string {
	switch a {
	case DiskAuto:
		return "auto"
	case DiskFMQM:
		return "F-MQM"
	case DiskFMBM:
		return "F-MBM"
	default:
		return fmt.Sprintf("DiskAlgorithm(%d)", int(a))
	}
}

// QuerySetConfig tunes a QuerySet.
type QuerySetConfig struct {
	// BlockPoints is the number of query points per memory block
	// (default 10,000, as in §5.2).
	BlockPoints int
	// BufferPages attaches an LRU buffer over the set's pages.
	BufferPages int
	// AutoBlockThreshold is the block count at which DiskAuto switches
	// from F-MQM (few blocks: per-block streams stay cheap) to F-MBM
	// (many blocks: one pruned traversal wins). Default
	// DefaultAutoBlockThreshold; negative forces F-MBM for every set.
	AutoBlockThreshold int
}

// QuerySet is a disk-resident, non-indexed query set: Hilbert-sorted,
// paged, and read block-by-block with I/O accounting — the input of F-MQM
// and F-MBM. Build one with NewQuerySet. A QuerySet is immutable after
// construction, so concurrent queries may share it.
type QuerySet struct {
	qf            *core.QueryFile
	acct          *pagestore.Accountant
	autoThreshold int
}

// NewQuerySet prepares a disk-resident query set from 2-D points.
func NewQuerySet(points []Point, cfg QuerySetConfig) (*QuerySet, error) {
	acct := pagestore.NewAccountant(cfg.BufferPages)
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point(p)
	}
	qf, err := core.NewQueryFile(pts, cfg.BlockPoints, acct, 0)
	if err != nil {
		return nil, err
	}
	threshold := cfg.AutoBlockThreshold
	if threshold == 0 {
		threshold = DefaultAutoBlockThreshold
	}
	return &QuerySet{qf: qf, acct: acct, autoThreshold: threshold}, nil
}

// AutoAlgorithm returns the algorithm DiskAuto resolves to for this set:
// F-MQM up to the configured block threshold, F-MBM beyond it.
func (qs *QuerySet) AutoAlgorithm() DiskAlgorithm {
	return autoDiskAlgorithm(qs.Blocks(), qs.autoThreshold)
}

// Len returns the number of query points.
func (qs *QuerySet) Len() int { return qs.qf.Len() }

// Blocks returns the number of memory-sized blocks.
func (qs *QuerySet) Blocks() int { return qs.qf.NumBlocks() }

// Pages returns the number of disk pages the set occupies.
func (qs *QuerySet) Pages() int { return qs.qf.Pages() }

// Cost reports the page reads charged to the query set since ResetCost.
func (qs *QuerySet) Cost() Cost { return costOf(qs.acct.Totals()) }

// ResetCost zeroes the counters, keeping buffer contents warm.
func (qs *QuerySet) ResetCost() { qs.acct.Reset() }

// GroupNNFromSet answers a GNN query whose query set resides on disk,
// using F-MQM or F-MBM. Accepted options: WithK, WithDepthFirst (F-MBM
// only) and WithDiskAlgorithm via the DiskQueryOption wrappers below.
// Safe for unlimited concurrent callers sharing the index and the set.
func (ix *Index) GroupNNFromSet(qs *QuerySet, algo DiskAlgorithm, opts ...QueryOption) ([]Result, error) {
	res, _, err := ix.GroupNNFromSetWithCost(qs, algo, opts...)
	return res, err
}

// GroupNNFromSetWithCost is GroupNNFromSet returning this query's own
// combined I/O cost (R-tree node accesses plus Q page reads).
func (ix *Index) GroupNNFromSetWithCost(qs *QuerySet, algo DiskAlgorithm, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	if c.aggregate != SumDist {
		return nil, Cost{}, ErrUnsupportedAggregate
	}
	if err := ix.prepare(); err != nil {
		return nil, Cost{}, err
	}
	v := ix.view.Load()
	if v.ov != nil {
		return nil, Cost{}, ErrPendingMutations
	}
	dopt := core.DiskOptions{Options: c.coreOptions()}
	var tk pagestore.CostTracker
	dopt.Cost = &tk
	p, err := packedForLayout(v, c.layout, c.region)
	if err != nil {
		return nil, Cost{}, err
	}
	dopt.Packed = p
	if algo == DiskAuto {
		algo = qs.AutoAlgorithm()
	}
	var rep *core.DiskReport
	switch algo {
	case DiskFMQM:
		rep, err = core.FMQM(v.tree, qs.qf, dopt)
	case DiskFMBM:
		rep, err = core.FMBM(v.tree, qs.qf, dopt)
	default:
		return nil, Cost{}, fmt.Errorf("gnn: unknown disk algorithm %v", algo)
	}
	if err != nil {
		return nil, Cost{}, err
	}
	return toResults(rep.Neighbors), costOf(rep.Cost), nil
}

// GroupNNClosestPairs answers a GNN query whose query set is itself
// indexed by an R*-tree, using the group closest pairs method (§4.1).
// pairBudget caps the number of closest pairs consumed (0 = unlimited);
// exceeding it returns ErrBudgetExceeded, mirroring the paper's
// non-terminating GCP configurations.
func (ix *Index) GroupNNClosestPairs(queryIndex *Index, pairBudget int64, opts ...QueryOption) ([]Result, error) {
	res, _, err := ix.GroupNNClosestPairsWithCost(queryIndex, pairBudget, opts...)
	return res, err
}

// GroupNNClosestPairsWithCost is GroupNNClosestPairs returning this
// query's own combined node accesses over both indexes.
func (ix *Index) GroupNNClosestPairsWithCost(queryIndex *Index, pairBudget int64, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	if c.aggregate != SumDist {
		return nil, Cost{}, ErrUnsupportedAggregate
	}
	if c.layout == LayoutPacked {
		// GCP is a synchronised pair traversal over two dynamic trees; it
		// has no packed form, and LayoutPacked promises to fail rather
		// than silently degrade.
		return nil, Cost{}, fmt.Errorf("gnn: GCP traverses two dynamic trees: %w", ErrNotPacked)
	}
	v, qv := ix.view.Load(), queryIndex.view.Load()
	if v.ov != nil || qv.ov != nil {
		return nil, Cost{}, ErrPendingMutations
	}
	if v.tree.IsShell() || qv.tree.IsShell() {
		// Mapped indexes have no dynamic nodes for GCP to pair-traverse.
		return nil, Cost{}, fmt.Errorf("gnn: GCP traverses two dynamic trees: %w", ErrMappedDynamic)
	}
	if err := ix.prepare(); err != nil {
		return nil, Cost{}, err
	}
	gopt := core.GCPOptions{
		Options:    c.coreOptions(),
		PairBudget: pairBudget,
	}
	var tk pagestore.CostTracker
	gopt.Cost = &tk
	rep, err := core.GCP(v.tree, qv.tree, gopt)
	if err != nil {
		return nil, Cost{}, err
	}
	return toResults(rep.Neighbors), costOf(rep.Cost), nil
}
