package gnn_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"gnn"
)

func layoutFixture(t *testing.T, n int) (*gnn.Index, [][]gnn.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]gnn.Point, 10)
	for i := range queries {
		g := make([]gnn.Point, 5)
		base := rng.Float64() * 800
		for j := range g {
			g[j] = gnn.Point{base + rng.Float64()*120, base + rng.Float64()*120}
		}
		queries[i] = g
	}
	return ix, queries
}

// TestLayoutEquivalencePublic drives the public API across both layouts
// and every algorithm, requiring identical results and identical
// per-query costs.
func TestLayoutEquivalencePublic(t *testing.T) {
	ix, queries := layoutFixture(t, 3000)
	if !ix.IsPacked() {
		t.Fatal("BuildIndex did not pack the serving layout")
	}
	algos := []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoMBM, gnn.AlgoBruteForce}
	for _, algo := range algos {
		for _, q := range queries {
			dyn, dcost, err := ix.GroupNNWithCost(q,
				gnn.WithK(4), gnn.WithAlgorithm(algo), gnn.WithLayout(gnn.LayoutDynamic))
			if err != nil {
				t.Fatal(err)
			}
			pkd, pcost, err := ix.GroupNNWithCost(q,
				gnn.WithK(4), gnn.WithAlgorithm(algo), gnn.WithLayout(gnn.LayoutPacked))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dyn, pkd) {
				t.Fatalf("%v: results diverged\ndynamic: %v\npacked:  %v", algo, dyn, pkd)
			}
			if dcost != pcost {
				t.Fatalf("%v: cost diverged: %+v vs %+v", algo, dcost, pcost)
			}
		}
	}
}

// TestLayoutLifecycle checks the mutation contract at the API surface:
// packed by default, still packed across Insert/Delete (writes land in
// the overlay; the base keeps serving), with every layout seeing the
// mutation immediately and Pack folding the overlay back into a fresh
// base.
func TestLayoutLifecycle(t *testing.T) {
	ix, queries := layoutFixture(t, 500)
	if _, err := ix.GroupNN(queries[0], gnn.WithLayout(gnn.LayoutPacked)); err != nil {
		t.Fatalf("packed query on fresh index: %v", err)
	}
	if err := ix.Insert(gnn.Point{1, 1}, 10_001); err != nil {
		t.Fatal(err)
	}
	if !ix.IsPacked() {
		t.Fatal("overlay insert must not unpack the serving layout")
	}
	// The pinned packed layout keeps serving and sees the overlay point.
	res, err := ix.GroupNN([]gnn.Point{{1, 1}}, gnn.WithLayout(gnn.LayoutPacked))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 10_001 {
		t.Fatalf("pinned-packed query missed the overlay insert: %v", res)
	}
	// A pinned packed layout cannot serve a region-constrained MBM query
	// (region pruning lives in the traversal): that combination fails
	// loudly rather than silently running dynamic — mutated or not.
	if _, err := ix.GroupNN(queries[0], gnn.WithLayout(gnn.LayoutPacked),
		gnn.WithRegion(gnn.Point{0, 0}, gnn.Point{1000, 1000})); !errors.Is(err, gnn.ErrPackedRegion) {
		t.Fatalf("expected ErrPackedRegion, got %v", err)
	}
	// Auto layout sees the new point too.
	res, err = ix.GroupNN([]gnn.Point{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 10_001 {
		t.Fatalf("auto-layout query missed the inserted point: %v", res)
	}
	// Pack compacts: the overlay folds into a fresh packed base and the
	// dynamic layout serves the point from real tree nodes again.
	ix.Pack()
	if !ix.IsPacked() {
		t.Fatal("index not packed after Pack")
	}
	res, err = ix.GroupNN([]gnn.Point{{1, 1}}, gnn.WithLayout(gnn.LayoutDynamic))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 10_001 {
		t.Fatalf("compacted query missed the inserted point: %v", res)
	}
	// Non-mutations change nothing: a no-op delete and a rejected insert
	// leave the index packed with an empty overlay.
	if ix.Delete(gnn.Point{123456, 123456}, -1) {
		t.Fatal("no-op delete unexpectedly removed something")
	}
	if !ix.IsPacked() {
		t.Fatal("no-op Delete dropped a still-valid packed snapshot")
	}
	if err := ix.Insert(gnn.Point{1, 2, 3}, 5); err == nil {
		t.Fatal("wrong-dimension insert succeeded")
	}
	if !ix.IsPacked() {
		t.Fatal("rejected Insert dropped a still-valid packed snapshot")
	}
	// A delete of a base point tombstones it: still packed, and queries
	// no longer see the point.
	if !ix.Delete(gnn.Point{1, 1}, 10_001) {
		t.Fatal("delete failed")
	}
	if !ix.IsPacked() {
		t.Fatal("tombstoning delete must not unpack the serving layout")
	}
	if res, err := ix.GroupNN([]gnn.Point{{1, 1}}, gnn.WithK(1)); err != nil {
		t.Fatal(err)
	} else if len(res) == 1 && res[0].ID == 10_001 {
		t.Fatal("query still sees the deleted point")
	}
	// NewIndex + Insert never packs until asked.
	ix2, err := gnn.NewIndex(gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.Insert(gnn.Point{2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	if ix2.IsPacked() {
		t.Fatal("incremental index claims to be packed")
	}
	ix2.Pack()
	if !ix2.IsPacked() {
		t.Fatal("incremental index did not pack on demand")
	}
}

// TestLayoutRegionPerAlgorithm checks the per-algorithm region contract:
// MQM and brute force serve region-constrained queries from the pinned
// packed layout (with results identical to dynamic), while GCP rejects a
// pinned packed layout outright.
func TestLayoutRegionPerAlgorithm(t *testing.T) {
	ix, queries := layoutFixture(t, 1500)
	region := []gnn.QueryOption{gnn.WithRegion(gnn.Point{0, 0}, gnn.Point{800, 800})}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoBruteForce} {
		opts := append([]gnn.QueryOption{gnn.WithK(3), gnn.WithAlgorithm(algo)}, region...)
		pkd, err := ix.GroupNN(queries[0], append(opts, gnn.WithLayout(gnn.LayoutPacked))...)
		if err != nil {
			t.Fatalf("%v: packed region query failed: %v", algo, err)
		}
		dyn, err := ix.GroupNN(queries[0], append(opts, gnn.WithLayout(gnn.LayoutDynamic))...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dyn, pkd) {
			t.Fatalf("%v: region results diverged between layouts", algo)
		}
	}
	qix, err := gnn.BuildIndex([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.GroupNNClosestPairs(qix, 0, gnn.WithLayout(gnn.LayoutPacked)); !errors.Is(err, gnn.ErrNotPacked) {
		t.Fatalf("GCP with LayoutPacked: expected ErrNotPacked, got %v", err)
	}
	if _, err := ix.GroupNNClosestPairs(qix, 0); err != nil {
		t.Fatalf("GCP with default layout: %v", err)
	}
}

// TestLayoutIteratorEquivalence steps the public incremental iterator on
// both layouts in lockstep.
func TestLayoutIteratorEquivalence(t *testing.T) {
	ix, queries := layoutFixture(t, 1500)
	for _, q := range queries[:3] {
		di, err := ix.GroupNNIterator(q, gnn.WithLayout(gnn.LayoutDynamic))
		if err != nil {
			t.Fatal(err)
		}
		pi, err := ix.GroupNNIterator(q, gnn.WithLayout(gnn.LayoutPacked))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			dn, dok := di.Next()
			pn, pok := pi.Next()
			if dok != pok || !reflect.DeepEqual(dn, pn) {
				t.Fatalf("iterator diverged at %d: %v/%v vs %v/%v", i, dn, dok, pn, pok)
			}
			if di.Cost() != pi.Cost() {
				t.Fatalf("iterator cost diverged at %d: %+v vs %+v", i, di.Cost(), pi.Cost())
			}
			if !dok {
				break
			}
		}
		di.Close()
		pi.Close()
	}
}
