package gnn

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"gnn/internal/mmapfile"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/shard"
	"gnn/internal/snapshot"
)

// Snapshot errors. The decoder sentinels re-export internal/snapshot's
// typed errors so callers can errors.Is them; every Open* failure wraps
// one of these (or an I/O error from the reader).
var (
	// ErrSnapshotBadMagic reports input that is not a snapshot file.
	ErrSnapshotBadMagic = snapshot.ErrBadMagic
	// ErrSnapshotVersion reports a snapshot written by an unknown format
	// version; re-snapshot from the source data to upgrade.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotChecksum reports a section whose CRC-32 check failed.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotTruncated reports a snapshot that ends prematurely.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotCorrupt reports structurally invalid snapshot contents.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrSnapshotKind reports opening a snapshot with the wrong function:
	// OpenSnapshot on a sharded file or OpenShardedSnapshot on a plain one.
	ErrSnapshotKind = errors.New("gnn: snapshot holds a different index kind")
	// ErrSnapshotClosed reports a query against a mapped index whose
	// Close has already unmapped the backing file.
	ErrSnapshotClosed = errors.New("gnn: mapped snapshot is closed")
)

// SnapshotOption customises how a snapshot is opened.
type SnapshotOption func(*snapshotConfig)

type snapshotConfig struct {
	bufferPages int
	eagerVerify bool
}

// WithSnapshotBuffer attaches an LRU buffer of that many pages to the
// loaded index's access accounting (the analogue of
// IndexConfig.BufferPages; buffer contents are runtime state and are
// never part of a snapshot). 0 — the default — disables buffering.
func WithSnapshotBuffer(pages int) SnapshotOption {
	return func(c *snapshotConfig) { c.bufferPages = pages }
}

// WithEagerVerify makes a mapped open (OpenSnapshotMapped,
// OpenShardedSnapshotMapped) run the full checksum and structural
// validation before returning, instead of deferring it to the first
// query. Eager verification touches every mapped page — paying the read
// I/O the lazy default avoids — in exchange for the v1 guarantee that a
// successfully opened index cannot later fail a query with
// ErrSnapshotChecksum. The copying opens (OpenSnapshot and friends)
// always verify eagerly; the option is a no-op there.
func WithEagerVerify() SnapshotOption {
	return func(c *snapshotConfig) { c.eagerVerify = true }
}

// WriteSnapshot serialises the index to w in the versioned binary format
// of internal/snapshot: the packed SoA arena, page identifiers included,
// so an index loaded from the snapshot (OpenSnapshot) answers every
// query with bit-identical results, Cost and node-access counts to this
// one. Concurrent queries and writes are fine: the write serialises one
// atomically loaded view — a consistent point-in-time state. A view with
// un-compacted overlay writes is compacted transiently into the snapshot
// (the format holds exactly one packed base); the serving state is not
// changed. A never-packed index is packed transiently the same way.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	// A mapped index must verify its borrowed bytes before re-serialising
	// them under fresh checksums, or a corrupt mapping would be laundered
	// into a snapshot that passes its CRCs.
	if err := ix.prepare(); err != nil {
		return err
	}
	v := ix.view.Load()
	p := v.servingPacked()
	switch {
	case v.ov != nil:
		pts, ids := materializeLive(v.tree, v.ov)
		nt, err := rtree.BulkLoadSTR(ix.rcfg, pts, ids)
		if err != nil {
			return err
		}
		p = nt.Pack()
	case p == nil:
		p = v.tree.Pack()
	}
	_, err := p.WriteTo(w)
	return err
}

// WriteSnapshotFile is WriteSnapshot to a file created at path.
func (ix *Index) WriteSnapshotFile(path string) error {
	return writeSnapshotFile(path, ix.WriteSnapshot)
}

// OpenSnapshot loads an index from a snapshot written by WriteSnapshot.
// The packed arena is adopted directly — no re-bulk-loading — and the
// dynamic tree is rebuilt around it in one linear pass, so the loaded
// index serves every algorithm (including LayoutDynamic queries,
// mutations and re-packing) exactly like the index that wrote it.
// Opening a sharded snapshot fails with ErrSnapshotKind; use
// OpenShardedSnapshot.
func OpenSnapshot(r io.Reader, opts ...SnapshotOption) (*Index, error) {
	data, err := readAllSized(r)
	if err != nil {
		return nil, err
	}
	return openSnapshotBytes(data, opts)
}

// OpenSnapshotFile is OpenSnapshot on the file at path.
func OpenSnapshotFile(path string, opts ...SnapshotOption) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return openSnapshotBytes(data, opts)
}

func openSnapshotBytes(data []byte, opts []SnapshotOption) (*Index, error) {
	c := buildSnapshotConfig(opts)
	m, trees, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Kind != snapshot.KindPlain {
		return nil, fmt.Errorf("%w: %v (use OpenShardedSnapshot)", ErrSnapshotKind, m.Kind)
	}
	acct := pagestore.NewAccountant(c.bufferPages)
	p, err := rtree.PackedFromSnapshot(trees[0], m.Dim, rtree.Config{Accountant: acct})
	if err != nil {
		return nil, err
	}
	return newIndexOver(p.Tree(), p, acct, p.Tree().Config()), nil
}

// WriteSnapshot serialises the sharded index to w: one arena section
// group per shard plus the sharded manifest (Hilbert-cut metadata), so
// OpenShardedSnapshot restores the index with its partition — per-shard
// point assignment, page ranges and node structure — intact. A view with
// un-compacted overlay writes is re-partitioned transiently into the
// snapshot; the serving state is not changed.
func (sx *ShardedIndex) WriteSnapshot(w io.Writer) error {
	// Same laundering guard as Index.WriteSnapshot: verify a mapped
	// set's borrowed bytes before re-checksumming them.
	if err := sx.prepare(); err != nil {
		return err
	}
	v := sx.view.Load()
	set := v.set
	if v.ov != nil {
		pts, ids := materializeLive(v.set, v.ov)
		nset, err := shard.Build(sx.rcfg, pts, ids, sx.shards)
		if err != nil {
			return err
		}
		defer nset.Close()
		set = nset
	}
	m, trees := set.Snapshot()
	return snapshot.Write(w, m, trees)
}

// WriteSnapshotFile is WriteSnapshot to a file created at path.
func (sx *ShardedIndex) WriteSnapshotFile(path string) error {
	return writeSnapshotFile(path, sx.WriteSnapshot)
}

// OpenShardedSnapshot loads a sharded index from a snapshot written by
// ShardedIndex.WriteSnapshot. Every shard's packed arena is adopted
// directly; all shards share one accountant (and, with
// WithSnapshotBuffer, one LRU buffer over their disjoint page ranges),
// so results, Cost and node-access counts are bit-identical to the
// index that wrote it. Opening a plain snapshot fails with
// ErrSnapshotKind; use OpenSnapshot.
func OpenShardedSnapshot(r io.Reader, opts ...SnapshotOption) (*ShardedIndex, error) {
	data, err := readAllSized(r)
	if err != nil {
		return nil, err
	}
	return openShardedSnapshotBytes(data, opts)
}

// OpenShardedSnapshotFile is OpenShardedSnapshot on the file at path.
func OpenShardedSnapshotFile(path string, opts ...SnapshotOption) (*ShardedIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return openShardedSnapshotBytes(data, opts)
}

func openShardedSnapshotBytes(data []byte, opts []SnapshotOption) (*ShardedIndex, error) {
	c := buildSnapshotConfig(opts)
	m, trees, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Kind != snapshot.KindSharded {
		return nil, fmt.Errorf("%w: %v (use OpenSnapshot)", ErrSnapshotKind, m.Kind)
	}
	acct := pagestore.NewAccountant(c.bufferPages)
	set, err := shard.SetFromSnapshot(m, trees, rtree.Config{Accountant: acct})
	if err != nil {
		return nil, err
	}
	return newShardedOver(set, acct, shardedRcfg(set)), nil
}

// shardedRcfg recovers the build geometry of a snapshot-loaded shard set
// for compaction rebuilds: shard 0's tree carries the writer's
// dimensions and node capacities; the page range restarts from zero (a
// rebuild re-partitions, so the old per-shard ranges do not apply).
func shardedRcfg(set *shard.Set) rtree.Config {
	cfg := set.Shard(0).Tree.Config()
	cfg.FirstPage = 0
	return cfg
}

// OpenSnapshotMapped memory-maps the snapshot file at path and serves
// queries directly from the mapping: the arena's coordinate columns,
// child indices, entry ranges and page identifiers are adopted from the
// mapped bytes without copying, so open latency and private resident
// set stay near zero regardless of index size, and concurrent processes
// mapping the same file share its page-cache pages. Results, Cost and
// node-access counts are bit-identical to OpenSnapshot on the same
// file.
//
// Header and section-table validation run eagerly — a truncated or
// structurally broken file fails here with a typed error — while the
// per-section checksums are verified lazily on the first query (a
// failure surfaces there as ErrSnapshotChecksum, never as a fault);
// WithEagerVerify moves all of it to the open.
//
// The mapped index serves the packed layout only: Insert returns an
// immutability error, Delete reports false, and WithLayout(LayoutDynamic)
// or GCP fail with ErrMappedDynamic. Call Close when done to unmap the
// file; queries after Close fail with ErrSnapshotClosed. On platforms
// without mmap support (or when the mapping cannot be adopted in place)
// the function transparently degrades to a read-and-copy open that
// behaves exactly like OpenSnapshotFile.
func OpenSnapshotMapped(path string, opts ...SnapshotOption) (*Index, error) {
	c := buildSnapshotConfig(opts)
	mf, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	ix, err := openMappedPlain(mf, c)
	if err != nil {
		mf.Close()
		return nil, err
	}
	return ix, nil
}

func openMappedPlain(mf *mmapfile.File, c snapshotConfig) (*Index, error) {
	ad, err := snapshot.DecodeAdopted(mf.Data())
	if err != nil {
		return nil, err
	}
	if ad.Manifest.Kind != snapshot.KindPlain {
		return nil, fmt.Errorf("%w: %v (use OpenShardedSnapshotMapped)", ErrSnapshotKind, ad.Manifest.Kind)
	}
	acct := pagestore.NewAccountant(c.bufferPages)
	if !ad.ZeroCopy {
		// Adoption fell back to a fully verified copying decode (non-mmap
		// platform, big-endian host or misaligned buffer); the mapping is
		// no longer needed.
		p, err := rtree.PackedFromSnapshot(ad.Trees[0], ad.Manifest.Dim, rtree.Config{Accountant: acct})
		if err != nil {
			return nil, err
		}
		mf.Close()
		return newIndexOver(p.Tree(), p, acct, p.Tree().Config()), nil
	}
	p, err := rtree.PackedFromSnapshotBorrowed(ad.Trees[0], ad.Manifest.Dim, rtree.Config{Accountant: acct}, ad.Verify)
	if err != nil {
		return nil, err
	}
	ix := newIndexOver(p.Tree(), p, acct, p.Tree().Config())
	ix.mapped = mf
	if c.eagerVerify {
		if err := ix.prepare(); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Close stops the background compactor (waiting for an in-flight cycle
// to finish or abort cleanly) and releases the file mapping of an index
// opened with OpenSnapshotMapped; on every other construction it only
// stops the compactor and returns nil. Close is safe under concurrent
// queries: it first marks the index closed — queries and writes arriving
// after that fail with ErrSnapshotClosed rather than touching unmapped
// memory — then waits for every inflight query, open iterator and
// compaction cycle to finish before the file is actually unmapped.
// Closing twice is safe; the second call returns nil immediately.
func (ix *Index) Close() error {
	ix.StopCompactor()
	if ix.mapped == nil {
		return nil
	}
	if ix.closed.Swap(true) {
		return nil // another Close won the race and owns the drain
	}
	drainRefs(&ix.refs)
	m := ix.mapped
	ix.mapped = nil
	return m.Close()
}

// OpenShardedSnapshotMapped is OpenSnapshotMapped for sharded
// snapshots: every shard's arena is adopted zero-copy from one shared
// mapping, the Hilbert partition metadata is decoded eagerly, and the
// deferred verification covers all shards at once on the first query.
// The same serving restrictions and Close semantics apply as for
// OpenSnapshotMapped.
func OpenShardedSnapshotMapped(path string, opts ...SnapshotOption) (*ShardedIndex, error) {
	c := buildSnapshotConfig(opts)
	mf, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	sx, err := openMappedSharded(mf, c)
	if err != nil {
		mf.Close()
		return nil, err
	}
	return sx, nil
}

func openMappedSharded(mf *mmapfile.File, c snapshotConfig) (*ShardedIndex, error) {
	ad, err := snapshot.DecodeAdopted(mf.Data())
	if err != nil {
		return nil, err
	}
	if ad.Manifest.Kind != snapshot.KindSharded {
		return nil, fmt.Errorf("%w: %v (use OpenSnapshotMapped)", ErrSnapshotKind, ad.Manifest.Kind)
	}
	acct := pagestore.NewAccountant(c.bufferPages)
	if !ad.ZeroCopy {
		set, err := shard.SetFromSnapshot(ad.Manifest, ad.Trees, rtree.Config{Accountant: acct})
		if err != nil {
			return nil, err
		}
		mf.Close()
		return newShardedOver(set, acct, shardedRcfg(set)), nil
	}
	set, err := shard.SetFromSnapshotBorrowed(ad.Manifest, ad.Trees, rtree.Config{Accountant: acct}, ad.Verify)
	if err != nil {
		return nil, err
	}
	sx := newShardedOver(set, acct, shardedRcfg(set))
	sx.mapped = mf
	if c.eagerVerify {
		if err := sx.prepare(); err != nil {
			return nil, err
		}
	}
	return sx, nil
}

// Close stops the background compactor and the index's resident scatter
// workers and, when the index was opened with OpenShardedSnapshotMapped,
// releases the file mapping. The same contract as Index.Close applies:
// safe under concurrent queries — it marks the index closed (later
// queries fail with ErrSnapshotClosed on a mapped index), drains the
// inflight ones and any in-flight compaction, stops the workers, then
// unmaps; closing twice is safe. On a built or copy-loaded index Close
// only stops the compactor and the workers — later queries still succeed
// on transient pooled ones.
func (sx *ShardedIndex) Close() error {
	sx.StopCompactor()
	if sx.mapped == nil {
		sx.view.Load().set.Close()
		return nil
	}
	if sx.closed.Swap(true) {
		return nil // another Close won the race and owns the drain
	}
	drainRefs(&sx.refs)
	sx.view.Load().set.Close()
	m := sx.mapped
	sx.mapped = nil
	return m.Close()
}

func buildSnapshotConfig(opts []SnapshotOption) snapshotConfig {
	var c snapshotConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// readAllSized reads r to EOF like io.ReadAll but, when r is a regular
// file, stats it first and allocates the full buffer up front — one
// allocation instead of the doubling growth of io.ReadAll, which both
// over-allocates (~2x the file size transiently) and copies the data
// log(n) times on multi-hundred-megabyte snapshots.
func readAllSized(r io.Reader) ([]byte, error) {
	f, ok := r.(*os.File)
	if !ok {
		return io.ReadAll(r)
	}
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		return io.ReadAll(r)
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size {
		return io.ReadAll(r)
	}
	// One spare byte so the final read returns (0, io.EOF) without
	// triggering a growth step when the size was exact.
	buf := bytes.NewBuffer(make([]byte, 0, int(size)+1))
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeSnapshotFile writes via fn into a buffered file at path,
// surfacing close/flush errors (a snapshot with a silent short write
// would fail its checksums on load, but the writer should say so).
func writeSnapshotFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fn(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
