package gnn

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/shard"
	"gnn/internal/snapshot"
)

// Snapshot errors. The decoder sentinels re-export internal/snapshot's
// typed errors so callers can errors.Is them; every Open* failure wraps
// one of these (or an I/O error from the reader).
var (
	// ErrSnapshotBadMagic reports input that is not a snapshot file.
	ErrSnapshotBadMagic = snapshot.ErrBadMagic
	// ErrSnapshotVersion reports a snapshot written by an unknown format
	// version; re-snapshot from the source data to upgrade.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotChecksum reports a section whose CRC-32 check failed.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotTruncated reports a snapshot that ends prematurely.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotCorrupt reports structurally invalid snapshot contents.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrSnapshotKind reports opening a snapshot with the wrong function:
	// OpenSnapshot on a sharded file or OpenShardedSnapshot on a plain one.
	ErrSnapshotKind = errors.New("gnn: snapshot holds a different index kind")
)

// SnapshotOption customises how a snapshot is opened.
type SnapshotOption func(*snapshotConfig)

type snapshotConfig struct {
	bufferPages int
}

// WithSnapshotBuffer attaches an LRU buffer of that many pages to the
// loaded index's access accounting (the analogue of
// IndexConfig.BufferPages; buffer contents are runtime state and are
// never part of a snapshot). 0 — the default — disables buffering.
func WithSnapshotBuffer(pages int) SnapshotOption {
	return func(c *snapshotConfig) { c.bufferPages = pages }
}

// WriteSnapshot serialises the index to w in the versioned binary format
// of internal/snapshot: the packed SoA arena, page identifiers included,
// so an index loaded from the snapshot (OpenSnapshot) answers every
// query with bit-identical results, Cost and node-access counts to this
// one. The index must not be mutated during the write (the same
// contract as a query); concurrent queries are fine. An index without a
// valid packed layout (after Insert/Delete, or built incrementally) is
// packed transiently for the write — the serving state is not changed.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	p := ix.servingPacked()
	if p == nil {
		p = ix.tree.Pack()
	}
	_, err := p.WriteTo(w)
	return err
}

// WriteSnapshotFile is WriteSnapshot to a file created at path.
func (ix *Index) WriteSnapshotFile(path string) error {
	return writeSnapshotFile(path, ix.WriteSnapshot)
}

// OpenSnapshot loads an index from a snapshot written by WriteSnapshot.
// The packed arena is adopted directly — no re-bulk-loading — and the
// dynamic tree is rebuilt around it in one linear pass, so the loaded
// index serves every algorithm (including LayoutDynamic queries,
// mutations and re-packing) exactly like the index that wrote it.
// Opening a sharded snapshot fails with ErrSnapshotKind; use
// OpenShardedSnapshot.
func OpenSnapshot(r io.Reader, opts ...SnapshotOption) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return openSnapshotBytes(data, opts)
}

// OpenSnapshotFile is OpenSnapshot on the file at path.
func OpenSnapshotFile(path string, opts ...SnapshotOption) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return openSnapshotBytes(data, opts)
}

func openSnapshotBytes(data []byte, opts []SnapshotOption) (*Index, error) {
	c := buildSnapshotConfig(opts)
	m, trees, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Kind != snapshot.KindPlain {
		return nil, fmt.Errorf("%w: %v (use OpenShardedSnapshot)", ErrSnapshotKind, m.Kind)
	}
	acct := pagestore.NewAccountant(c.bufferPages)
	p, err := rtree.PackedFromSnapshot(trees[0], m.Dim, rtree.Config{Accountant: acct})
	if err != nil {
		return nil, err
	}
	return &Index{tree: p.Tree(), acct: acct, packed: p}, nil
}

// WriteSnapshot serialises the sharded index to w: one arena section
// group per shard plus the sharded manifest (Hilbert-cut metadata), so
// OpenShardedSnapshot restores the index with its partition — per-shard
// point assignment, page ranges and node structure — intact.
func (sx *ShardedIndex) WriteSnapshot(w io.Writer) error {
	m, trees := sx.set.Snapshot()
	return snapshot.Write(w, m, trees)
}

// WriteSnapshotFile is WriteSnapshot to a file created at path.
func (sx *ShardedIndex) WriteSnapshotFile(path string) error {
	return writeSnapshotFile(path, sx.WriteSnapshot)
}

// OpenShardedSnapshot loads a sharded index from a snapshot written by
// ShardedIndex.WriteSnapshot. Every shard's packed arena is adopted
// directly; all shards share one accountant (and, with
// WithSnapshotBuffer, one LRU buffer over their disjoint page ranges),
// so results, Cost and node-access counts are bit-identical to the
// index that wrote it. Opening a plain snapshot fails with
// ErrSnapshotKind; use OpenSnapshot.
func OpenShardedSnapshot(r io.Reader, opts ...SnapshotOption) (*ShardedIndex, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return openShardedSnapshotBytes(data, opts)
}

// OpenShardedSnapshotFile is OpenShardedSnapshot on the file at path.
func OpenShardedSnapshotFile(path string, opts ...SnapshotOption) (*ShardedIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return openShardedSnapshotBytes(data, opts)
}

func openShardedSnapshotBytes(data []byte, opts []SnapshotOption) (*ShardedIndex, error) {
	c := buildSnapshotConfig(opts)
	m, trees, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Kind != snapshot.KindSharded {
		return nil, fmt.Errorf("%w: %v (use OpenSnapshot)", ErrSnapshotKind, m.Kind)
	}
	acct := pagestore.NewAccountant(c.bufferPages)
	set, err := shard.SetFromSnapshot(m, trees, rtree.Config{Accountant: acct})
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{set: set, acct: acct}, nil
}

func buildSnapshotConfig(opts []SnapshotOption) snapshotConfig {
	var c snapshotConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// writeSnapshotFile writes via fn into a buffered file at path,
// surfacing close/flush errors (a snapshot with a silent short write
// would fail its checksums on load, but the writer should say so).
func writeSnapshotFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fn(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
