package gnn_test

// Fault table for crash-safe snapshot rotation: compaction is killed at
// every rotation stage (plus a torn-write corruption and a simulated
// full disk) while readers hammer the index. Requirements: zero failed
// queries, the previous snapshot generation survives intact and
// decodable, no temp-file orphans, the failure lands in
// Stats().LastCompactionError, and the next clean cycle rotates
// successfully.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"gnn"
	"gnn/internal/snapshot"
)

type faultCase struct {
	name string
	hook func(stage, tmp string) error
	// postCommit marks a fault injected after the rename: the rotation
	// reports failure but the new generation is already durable — the
	// on-disk file holds the NEW state, never a torn one.
	postCommit bool
}

func faultTable() []faultCase {
	var cases []faultCase
	for _, stage := range []string{
		snapshot.StageCreate, snapshot.StageWrite, snapshot.StageSync,
		snapshot.StageVerify, snapshot.StageRename, snapshot.StageDirSync,
	} {
		s := stage
		cases = append(cases, faultCase{
			name: "kill-at-" + s,
			hook: func(stage, tmp string) error {
				if stage == s {
					return errors.New("injected crash")
				}
				return nil
			},
			postCommit: s == snapshot.StageDirSync,
		})
	}
	cases = append(cases,
		faultCase{
			// A torn write: the temp file is silently truncated after the
			// fsync. The strict re-decode before rename must catch it.
			name: "corrupt-temp",
			hook: func(stage, tmp string) error {
				if stage == snapshot.StageVerify {
					if err := os.Truncate(tmp, 10); err != nil {
						return err
					}
				}
				return nil
			},
		},
		faultCase{
			name: "disk-full",
			hook: func(stage, tmp string) error {
				if stage == snapshot.StageSync {
					return fmt.Errorf("fsync: %w", syscall.ENOSPC)
				}
				return nil
			},
		},
	)
	return cases
}

// TestCompactionFaultTablePlain drives the full fault table against a
// plain index with a rotation path configured.
func TestCompactionFaultTablePlain(t *testing.T) {
	pts, groups, _ := overlayFixture(t, 300, 81)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "serving.snap")

	// A stale orphan from a "crashed" previous process is swept on start.
	if err := os.WriteFile(snapshot.TempPath(path), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Threshold is unreachably high: the background loop stays idle and
	// the test drives cycles synchronously via Compact, so the Failpoint
	// global is only touched from one goroutine.
	if err := ix.StartCompactor(gnn.CompactorConfig{Threshold: 1 << 30, Path: path}); err != nil {
		t.Fatal(err)
	}
	defer ix.StopCompactor()
	if _, err := os.Stat(snapshot.TempPath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale temp not removed on StartCompactor: %v", err)
	}

	// Establish a good generation zero.
	next := int64(100_000)
	mutate := func() {
		t.Helper()
		if err := ix.Insert(gnn.Point{float64(next % 100), float64((next / 7) % 100)}, next); err != nil {
			t.Fatal(err)
		}
		next++
	}
	mutate()
	if err := ix.Compact(); err != nil {
		t.Fatalf("clean rotation: %v", err)
	}
	goodLen := ix.Len()
	assertSnapshotServes := func(wantLen int) {
		t.Helper()
		loaded, err := gnn.OpenSnapshotFile(path)
		if err != nil {
			t.Fatalf("snapshot file not decodable: %v", err)
		}
		if loaded.Len() != wantLen {
			t.Fatalf("snapshot generation: Len %d, want %d", loaded.Len(), wantLen)
		}
	}
	assertSnapshotServes(goodLen)

	// Readers hammer the index across the whole table; any error is a
	// failed query under fault injection.
	var qerrs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ix.GroupNN(groups[w%len(groups)], gnn.WithK(3)); err != nil {
					qerrs.Add(1)
				}
			}
		}(w)
	}

	for _, fc := range faultTable() {
		mutate()
		snapshot.Failpoint = fc.hook
		err := ix.Compact()
		snapshot.Failpoint = nil
		if err == nil {
			t.Fatalf("%s: compaction reported success", fc.name)
		}
		// The in-memory swap still happened: serving degrades to
		// memory-only, it does not stall.
		s := ix.Stats()
		if s.Delta != 0 || s.Tombstones != 0 {
			t.Fatalf("%s: overlay not folded after failed rotation: %+v", fc.name, s)
		}
		if s.LastCompactionError == "" || !strings.Contains(s.LastCompactionError, "rotate") {
			t.Fatalf("%s: LastCompactionError = %q", fc.name, s.LastCompactionError)
		}
		// Pre-commit faults leave the previous generation untouched and
		// decodable; a post-commit fault (dirsync) already renamed the new
		// generation in. Either way the file is never torn.
		if fc.postCommit {
			goodLen = ix.Len()
		}
		assertSnapshotServes(goodLen)
		if _, err := os.Stat(snapshot.TempPath(path)); !os.IsNotExist(err) {
			t.Fatalf("%s: temp orphan left behind: %v", fc.name, err)
		}
		// The next clean cycle rotates the accumulated state out.
		mutate()
		if err := ix.Compact(); err != nil {
			t.Fatalf("%s: clean cycle after fault: %v", fc.name, err)
		}
		goodLen = ix.Len()
		assertSnapshotServes(goodLen)
		if s := ix.Stats(); s.LastCompactionError != "" {
			t.Fatalf("%s: error not cleared by clean cycle: %q", fc.name, s.LastCompactionError)
		}
	}

	close(stop)
	wg.Wait()
	if n := qerrs.Load(); n != 0 {
		t.Fatalf("%d queries failed during fault injection", n)
	}
}

// TestCompactionFaultTableSharded spot-checks the same contract on the
// sharded rotation path (same AtomicWriteFile machinery underneath).
func TestCompactionFaultTableSharded(t *testing.T) {
	pts, groups, _ := overlayFixture(t, 300, 82)
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	dir := t.TempDir()
	path := filepath.Join(dir, "sharded.snap")
	if err := sx.StartCompactor(gnn.CompactorConfig{Threshold: 1 << 30, Path: path}); err != nil {
		t.Fatal(err)
	}
	defer sx.StopCompactor()

	if err := sx.Insert(gnn.Point{1, 2}, 9001); err != nil {
		t.Fatal(err)
	}
	if err := sx.Compact(); err != nil {
		t.Fatalf("clean rotation: %v", err)
	}
	goodLen := sx.Len()

	for _, fc := range []faultCase{faultTable()[4], faultTable()[6]} { // kill-at-rename, corrupt-temp
		if err := sx.Insert(gnn.Point{3, 4}, 9002); err != nil {
			t.Fatal(err)
		}
		snapshot.Failpoint = fc.hook
		err := sx.Compact()
		snapshot.Failpoint = nil
		if err == nil {
			t.Fatalf("%s: compaction reported success", fc.name)
		}
		if s := sx.Stats(); s.Delta != 0 || s.LastCompactionError == "" {
			t.Fatalf("%s: stats after failed rotation: %+v", fc.name, s)
		}
		loaded, oerr := gnn.OpenShardedSnapshotFile(path)
		if oerr != nil {
			t.Fatalf("%s: previous sharded snapshot not decodable: %v", fc.name, oerr)
		}
		if loaded.Len() != goodLen {
			t.Fatalf("%s: snapshot Len %d, want %d", fc.name, loaded.Len(), goodLen)
		}
		loaded.Close()
		if _, err := os.Stat(snapshot.TempPath(path)); !os.IsNotExist(err) {
			t.Fatalf("%s: temp orphan left behind: %v", fc.name, err)
		}
		if _, err := sx.GroupNN(groups[0], gnn.WithK(2)); err != nil {
			t.Fatalf("%s: query after failed rotation: %v", fc.name, err)
		}
		if !sx.Delete(gnn.Point{3, 4}, 9002) {
			t.Fatalf("%s: cleanup delete failed", fc.name)
		}
		if err := sx.Compact(); err != nil {
			t.Fatalf("%s: clean cycle after fault: %v", fc.name, err)
		}
		goodLen = sx.Len()
	}
}
