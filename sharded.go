package gnn

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/mmapfile"
	"gnn/internal/pagestore"
	"gnn/internal/shard"
)

// ShardedIndex partitions the data set into S independent packed R-trees
// (Hilbert partitioning: sort by Hilbert value, cut the curve into S
// spatially coherent runs) and answers every query by scatter-gather:
// the chosen algorithm runs against each shard, the shards continuously
// exchange their best-found aggregate distance so each one prunes the
// others' search space, and a k-way merge reassembles the global answer.
//
// A ShardedIndex returns the results an equally configured Index over
// the same points returns — sharding is an execution strategy, not an
// approximation. Aggregate distances match rank for rank, bit for bit;
// the one latitude is exact ties: when distinct points share exactly the
// same aggregate distance at the k-th boundary, the representative kept
// may be a different member of the tie than the single traversal's
// first-come choice. Its reported per-query cost is exactly the sum of
// the per-shard node accesses. It is immutable after construction
// (no Insert/Delete): rebuild to change the data, which keeps every
// shard's packed snapshot permanently valid and all reads lock-free.
//
// Use it when query groups are spatially concentrated relative to the
// data spread (the common case: a few users in one city, points of
// interest across a country): the merge then touches one or two shards
// seriously and the rest are pruned by the shared bound after a handful
// of node accesses. See the README's "Sharding" section for guidance.
type ShardedIndex struct {
	set  *shard.Set
	acct *pagestore.Accountant

	// mapped is the file view backing a zero-copy open
	// (OpenShardedSnapshotMapped); nil otherwise. closed flips when Close
	// unmaps it, after which queries fail fast. refs counts inflight
	// readers so Close can drain them before unmapping (see
	// Index.acquire for the ordering argument).
	mapped *mmapfile.File
	closed atomic.Bool
	refs   atomic.Int64
}

// acquire registers an inflight reader; see Index.acquire.
func (sx *ShardedIndex) acquire() error {
	sx.refs.Add(1)
	if sx.closed.Load() {
		sx.refs.Add(-1)
		return ErrSnapshotClosed
	}
	return nil
}

// release drops a reference taken by acquire.
func (sx *ShardedIndex) release() { sx.refs.Add(-1) }

// prepare readies the sharded index for a traversal: it fails fast on a
// closed mapping and forces the deferred verification of a mapped open
// (once for the whole snapshot). A no-op for built or copy-loaded sets.
func (sx *ShardedIndex) prepare() error {
	if sx.closed.Load() {
		return ErrSnapshotClosed
	}
	return sx.set.Prepare()
}

// BuildShardedIndex bulk-loads a sharded index over points with the given
// shard count. ids[i] identifies points[i]; pass nil to use the slice
// index. cfg applies to every shard (they share one access accountant
// and, when cfg.BufferPages > 0, one LRU buffer over disjoint page IDs).
func BuildShardedIndex(points []Point, ids []int64, shards int, cfg IndexConfig) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gnn: %d shards; need at least 1", shards)
	}
	acct, rcfg := indexConfig(cfg)
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point(p)
	}
	set, err := shard.Build(rcfg, pts, ids, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{set: set, acct: acct}, nil
}

// NumShards returns the number of shards.
func (sx *ShardedIndex) NumShards() int { return sx.set.NumShards() }

// ShardSizes returns the per-shard point counts (they differ by at most
// one: the Hilbert curve is cut into equal runs).
func (sx *ShardedIndex) ShardSizes() []int { return sx.set.Sizes() }

// Len returns the total number of indexed points.
func (sx *ShardedIndex) Len() int { return sx.set.Len() }

// Dim returns the index dimensionality.
func (sx *ShardedIndex) Dim() int { return sx.set.Dim() }

// Cost returns the access counts accumulated across all queries and all
// shards since the last ResetCost.
func (sx *ShardedIndex) Cost() Cost { return costOf(sx.acct.Totals()) }

// ResetCost zeroes the counters, keeping any buffer contents warm.
func (sx *ShardedIndex) ResetCost() { sx.acct.Reset() }

// ResetCostCold zeroes the counters and drops the buffer contents.
func (sx *ShardedIndex) ResetCostCold() { sx.acct.ResetAll() }

// CheckInvariants validates every shard's R-tree structure. On a mapped
// index it runs the snapshot's checksum and structural validation
// instead (there are no dynamic nodes).
func (sx *ShardedIndex) CheckInvariants() error {
	if err := sx.acquire(); err != nil {
		return err
	}
	defer sx.release()
	if err := sx.prepare(); err != nil {
		return err
	}
	for i := 0; i < sx.set.NumShards(); i++ {
		if err := sx.set.Shard(i).Tree.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// usePackedLayout resolves a layout request for the sharded read path.
// Shard snapshots are always valid (the set is immutable), so LayoutAuto
// and LayoutPacked both serve packed and ErrNotPacked cannot occur; the
// packed/region conflict follows the same demotion rule
// (queryConfig.effectiveRegion) as the plain Index, and LayoutDynamic is
// rejected on a mapped open (no dynamic nodes exist).
func (sx *ShardedIndex) usePackedLayout(c queryConfig) (bool, error) {
	switch c.layout {
	case LayoutDynamic:
		if sx.set.Borrowed() {
			return false, ErrMappedDynamic
		}
		return false, nil
	case LayoutPacked:
		if c.effectiveRegion() != nil {
			return false, ErrPackedRegion
		}
		return true, nil
	default:
		return true, nil
	}
}

// GroupNN answers a GNN query against the sharded index: identical
// results to Index.GroupNN over the same points, computed by parallel
// scatter-gather. Safe for unlimited concurrent callers.
func (sx *ShardedIndex) GroupNN(query []Point, opts ...QueryOption) ([]Result, error) {
	res, _, err := sx.GroupNNWithCost(query, opts...)
	return res, err
}

// defaultScatterWorkers is the scatter width of a latency-oriented
// single query: one worker per available core.
func defaultScatterWorkers() int { return runtime.GOMAXPROCS(0) }

// GroupNNWithCost is GroupNN returning this query's own I/O cost — the
// exact sum of all per-shard node accesses — alongside the results. The
// index-wide aggregate (ShardedIndex.Cost) accrues the same counts.
func (sx *ShardedIndex) GroupNNWithCost(query []Point, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	var tk pagestore.CostTracker
	// Single queries default to full parallel scatter for latency.
	res, err := sx.groupNN(query, c, &tk, nil, defaultScatterWorkers())
	return res, costOf(tk), err
}

// groupNN scatters one query across the shards, charging tk. ec supplies
// the sequential-scatter scratch arena (the batch engine passes its
// per-worker context); defaultWorkers applies when WithShards was not
// given.
func (sx *ShardedIndex) groupNN(query []Point, c queryConfig, tk *pagestore.CostTracker, ec *core.ExecContext, defaultWorkers int) ([]Result, error) {
	kern, err := kernelFor(c.algo)
	if err != nil {
		return nil, err
	}
	usePacked, err := sx.usePackedLayout(c)
	if err != nil {
		return nil, err
	}
	if err := sx.acquire(); err != nil {
		return nil, err
	}
	defer sx.release()
	if err := c.cancel.Check(); err != nil {
		return nil, err // already expired/canceled on arrival
	}
	if err := sx.prepare(); err != nil {
		return nil, err
	}
	owned := false
	if ec == nil {
		ec = core.AcquireExec()
		owned = true
	}
	qs := ec.Points(len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	opt := c.coreOptions()
	opt.Cost = tk
	opt.Exec = ec
	workers := c.shards
	if workers == 0 {
		workers = defaultWorkers
	}
	gs, err := sx.set.Search(qs, opt, usePacked, workers, kern)
	if owned {
		ec.Release()
	}
	if err != nil {
		return nil, err
	}
	return toResults(gs), nil
}

// GroupNNIterator starts an incremental GNN scan over all shards: the
// per-shard incremental MBM streams merge lazily into one globally
// ascending stream, advancing a shard only when its lower bound is the
// smallest. Results and ordering are identical to Index.GroupNNIterator
// over the same points; its cost is the exact sum of per-shard accesses.
func (sx *ShardedIndex) GroupNNIterator(query []Point, opts ...QueryOption) (*Iterator, error) {
	c := buildConfig(opts)
	usePacked, err := sx.usePackedLayout(queryConfig{algo: AlgoMBM, layout: c.layout, region: c.region})
	if err != nil {
		return nil, err
	}
	if err := sx.acquire(); err != nil {
		return nil, err
	}
	if err := sx.prepare(); err != nil {
		sx.release()
		return nil, err
	}
	qs := make([]geom.Point, len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	out := &Iterator{}
	opt := c.coreOptions()
	opt.Cost = &out.tk
	it, err := sx.set.NewIterator(qs, opt, usePacked)
	if err != nil {
		sx.release()
		return nil, err
	}
	out.it = it
	out.done = sx.release
	return out, nil
}
