package gnn

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/mmapfile"
	"gnn/internal/overlay"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/shard"
	"gnn/internal/snapshot"
)

// ShardedIndex partitions the data set into S independent packed R-trees
// (Hilbert partitioning: sort by Hilbert value, cut the curve into S
// spatially coherent runs) and answers every query by scatter-gather:
// the chosen algorithm runs against each shard, the shards continuously
// exchange their best-found aggregate distance so each one prunes the
// others' search space, and a k-way merge reassembles the global answer.
//
// A ShardedIndex returns the results an equally configured Index over
// the same points returns — sharding is an execution strategy, not an
// approximation. Aggregate distances match rank for rank, bit for bit;
// the one latitude is exact ties: when distinct points share exactly the
// same aggregate distance at the k-th boundary, the representative kept
// may be a different member of the tie than the single traversal's
// first-come choice. Its reported per-query cost is exactly the sum of
// the per-shard node accesses.
//
// The shard set itself is immutable, but the index accepts writes under
// live traffic exactly like a packed Index: Insert and Delete land in a
// delta overlay merged into every query, and Compact (or the background
// compactor) re-partitions base plus overlay into a fresh shard set,
// swapped in atomically under live readers. See the package comment's
// "Writes under live traffic" paragraph.
//
// Use it when query groups are spatially concentrated relative to the
// data spread (the common case: a few users in one city, points of
// interest across a country): the merge then touches one or two shards
// seriously and the rest are pruned by the shared bound after a handful
// of node accesses. See the README's "Sharding" section for guidance.
type ShardedIndex struct {
	// view is the current immutable serving state: shard set plus write
	// overlay. Readers load it once per operation; writers build a
	// successor under mu and publish it atomically.
	view   atomic.Pointer[shardedView]
	acct   *pagestore.Accountant
	rcfg   rtree.Config
	shards int

	// Writer state; the same discipline as Index (see gnn.go).
	mu        sync.Mutex
	log       []overlay.Mutation
	comp      *compactor
	compactMu sync.Mutex
	persist   string

	compactGen atomic.Uint64
	compactNS  atomic.Int64
	compactErr atomic.Pointer[string]

	// mapped is the file view backing a zero-copy open
	// (OpenShardedSnapshotMapped); nil otherwise. closed flips when Close
	// unmaps it, after which queries fail fast. refs counts inflight
	// readers so Close can drain them before unmapping (see
	// Index.acquire for the ordering argument).
	mapped *mmapfile.File
	closed atomic.Bool
	refs   atomic.Int64
}

// shardedView is one immutable serving version of a ShardedIndex: the
// sharded twin of viewState. A shard set is always packed, so there is
// no frozen flag — every ShardedIndex mutates through the overlay.
type shardedView struct {
	set *shard.Set
	ov  *overlayState
	seq uint64
}

// succ returns a successor view carrying the (possibly nil-normalised)
// overlay.
func (v *shardedView) succ(ov *overlayState) *shardedView {
	if ov.empty() {
		ov = nil
	}
	return &shardedView{set: v.set, ov: ov, seq: v.seq + 1}
}

// overlaySize mirrors viewState.overlaySize.
func (v *shardedView) overlaySize() int {
	if v.ov == nil {
		return 0
	}
	return len(v.ov.pts) + v.ov.tombs.Total()
}

// newShardedOver wraps a constructed shard set into a ShardedIndex with
// its initial view published.
func newShardedOver(set *shard.Set, acct *pagestore.Accountant, rcfg rtree.Config) *ShardedIndex {
	sx := &ShardedIndex{acct: acct, rcfg: rcfg, shards: set.NumShards()}
	sx.view.Store(&shardedView{set: set})
	empty := ""
	sx.compactErr.Store(&empty)
	return sx
}

// acquire registers an inflight reader; see Index.acquire.
func (sx *ShardedIndex) acquire() error {
	sx.refs.Add(1)
	if sx.closed.Load() {
		sx.refs.Add(-1)
		return ErrSnapshotClosed
	}
	return nil
}

// release drops a reference taken by acquire.
func (sx *ShardedIndex) release() { sx.refs.Add(-1) }

// prepare readies the sharded index for a traversal: it fails fast on a
// closed mapping and forces the deferred verification of a mapped open
// (once for the whole snapshot). A no-op for built or copy-loaded sets.
func (sx *ShardedIndex) prepare() error {
	if sx.closed.Load() {
		return ErrSnapshotClosed
	}
	return sx.view.Load().set.Prepare()
}

// applierFor binds the shared write logic to one sharded view.
func (sx *ShardedIndex) applierFor(v *shardedView) applier {
	return applier{
		dcfg:      deltaConfig(sx.rcfg),
		baseCount: func(p geom.Point, id int64) int { return v.set.CountExact(p, id) },
	}
}

// applyInsert returns the successor view for inserting (p, id).
func (sx *ShardedIndex) applyInsert(v *shardedView, p geom.Point, id int64) (*shardedView, error) {
	nov, err := sx.applierFor(v).insert(v.ov, p, id)
	if err != nil {
		return nil, err
	}
	return v.succ(nov), nil
}

// applyDelete returns the successor view for deleting one occurrence of
// (p, id), and whether a matching live entry existed.
func (sx *ShardedIndex) applyDelete(v *shardedView, p geom.Point, id int64) (*shardedView, bool) {
	nov, ok := sx.applierFor(v).delete(v.ov, p, id)
	if !ok {
		return nil, false
	}
	return v.succ(nov), true
}

// BuildShardedIndex bulk-loads a sharded index over points with the given
// shard count. ids[i] identifies points[i]; pass nil to use the slice
// index. cfg applies to every shard (they share one access accountant
// and, when cfg.BufferPages > 0, one LRU buffer over disjoint page IDs).
func BuildShardedIndex(points []Point, ids []int64, shards int, cfg IndexConfig) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gnn: %d shards; need at least 1", shards)
	}
	acct, rcfg := indexConfig(cfg)
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point(p)
	}
	set, err := shard.Build(rcfg, pts, ids, shards)
	if err != nil {
		return nil, err
	}
	return newShardedOver(set, acct, rcfg), nil
}

// Insert adds a data point with its identifier. The insert lands in the
// delta overlay — the immutable shard set keeps serving, and the insert
// is safe under concurrent readers; Compact or the background compactor
// re-partitions it into a fresh shard set. A rejected insert (dimension
// mismatch) changes nothing.
func (sx *ShardedIndex) Insert(p Point, id int64) error {
	sx.mu.Lock()
	defer sx.mu.Unlock()
	if sx.closed.Load() {
		return ErrSnapshotClosed
	}
	v := sx.view.Load()
	if len(p) != v.set.Dim() {
		return fmt.Errorf("rtree: point dimension %d, tree dimension %d", len(p), v.set.Dim())
	}
	nv, err := sx.applyInsert(v, geom.Point(p).Clone(), id)
	if err != nil {
		return err
	}
	sx.log = append(sx.log, overlay.Mutation{P: geom.Point(p).Clone(), ID: id})
	sx.view.Store(nv)
	sx.kickCompactor(nv)
	return nil
}

// Delete removes one occurrence of (p, id); it reports whether a matching
// entry existed. The delete either physically removes an overlay point or
// tombstones a base occurrence — the shard set keeps serving, and the
// delete is safe under concurrent readers. A no-op delete changes
// nothing.
func (sx *ShardedIndex) Delete(p Point, id int64) bool {
	sx.mu.Lock()
	defer sx.mu.Unlock()
	if sx.closed.Load() {
		return false
	}
	v := sx.view.Load()
	if len(p) != v.set.Dim() {
		return false
	}
	if sx.prepare() != nil {
		return false // unverifiable mapping; queries report why
	}
	nv, ok := sx.applyDelete(v, geom.Point(p).Clone(), id)
	if !ok {
		return false
	}
	sx.log = append(sx.log, overlay.Mutation{Del: true, P: geom.Point(p).Clone(), ID: id})
	sx.view.Store(nv)
	sx.kickCompactor(nv)
	return true
}

// NumShards returns the number of shards. The count is preserved across
// compactions: the overlay is re-partitioned into the same number of
// shards the index was built with.
func (sx *ShardedIndex) NumShards() int { return sx.shards }

// ShardSizes returns the per-shard point counts of the current base set
// (they differ by at most one: the Hilbert curve is cut into equal
// runs). Un-compacted overlay writes are not included.
func (sx *ShardedIndex) ShardSizes() []int { return sx.view.Load().set.Sizes() }

// Len returns the number of live points: base points not masked by a
// delete tombstone, plus overlay inserts.
func (sx *ShardedIndex) Len() int {
	v := sx.view.Load()
	n := v.set.Len()
	if v.ov != nil {
		n += len(v.ov.pts) - v.ov.tombs.Total()
	}
	return n
}

// Dim returns the index dimensionality.
func (sx *ShardedIndex) Dim() int { return sx.view.Load().set.Dim() }

// Cost returns the access counts accumulated across all queries and all
// shards since the last ResetCost.
func (sx *ShardedIndex) Cost() Cost { return costOf(sx.acct.Totals()) }

// ResetCost zeroes the counters, keeping any buffer contents warm.
func (sx *ShardedIndex) ResetCost() { sx.acct.Reset() }

// ResetCostCold zeroes the counters and drops the buffer contents.
func (sx *ShardedIndex) ResetCostCold() { sx.acct.ResetAll() }

// CheckInvariants validates every shard's R-tree structure, plus the
// overlay's delta tree when present. On a mapped index it runs the
// snapshot's checksum and structural validation instead (there are no
// dynamic nodes).
func (sx *ShardedIndex) CheckInvariants() error {
	if err := sx.acquire(); err != nil {
		return err
	}
	defer sx.release()
	if err := sx.prepare(); err != nil {
		return err
	}
	v := sx.view.Load()
	for i := 0; i < v.set.NumShards(); i++ {
		if err := v.set.Shard(i).Tree.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if v.ov != nil && v.ov.delta != nil {
		if err := v.ov.delta.CheckInvariants(); err != nil {
			return fmt.Errorf("overlay delta: %w", err)
		}
	}
	return nil
}

// usePackedLayout resolves a layout request for the sharded read path.
// Shard snapshots are always valid (the set is immutable), so LayoutAuto
// and LayoutPacked both serve packed and ErrNotPacked cannot occur; the
// packed/region conflict follows the same demotion rule
// (queryConfig.effectiveRegion) as the plain Index, and LayoutDynamic is
// rejected on a mapped open (no dynamic nodes exist).
func usePackedLayout(v *shardedView, c queryConfig) (bool, error) {
	switch c.layout {
	case LayoutDynamic:
		if v.set.Borrowed() {
			return false, ErrMappedDynamic
		}
		return false, nil
	case LayoutPacked:
		if c.effectiveRegion() != nil {
			return false, ErrPackedRegion
		}
		return true, nil
	default:
		return true, nil
	}
}

// GroupNN answers a GNN query against the sharded index: identical
// results to Index.GroupNN over the same points, computed by parallel
// scatter-gather. Safe for unlimited concurrent callers.
func (sx *ShardedIndex) GroupNN(query []Point, opts ...QueryOption) ([]Result, error) {
	res, _, err := sx.GroupNNWithCost(query, opts...)
	return res, err
}

// defaultScatterWorkers is the scatter width of a latency-oriented
// single query: one worker per available core.
func defaultScatterWorkers() int { return runtime.GOMAXPROCS(0) }

// GroupNNWithCost is GroupNN returning this query's own I/O cost — the
// exact sum of all per-shard node accesses — alongside the results. The
// index-wide aggregate (ShardedIndex.Cost) accrues the same counts.
func (sx *ShardedIndex) GroupNNWithCost(query []Point, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	var tk pagestore.CostTracker
	// Single queries default to full parallel scatter for latency.
	res, err := sx.groupNN(query, c, &tk, nil, defaultScatterWorkers())
	return res, costOf(tk), err
}

// groupNN scatters one query across the shards, charging tk. ec supplies
// the sequential-scatter scratch arena (the batch engine passes its
// per-worker context); defaultWorkers applies when WithShards was not
// given.
func (sx *ShardedIndex) groupNN(query []Point, c queryConfig, tk *pagestore.CostTracker, ec *core.ExecContext, defaultWorkers int) ([]Result, error) {
	kern, err := kernelFor(c.algo)
	if err != nil {
		return nil, err
	}
	if err := sx.acquire(); err != nil {
		return nil, err
	}
	defer sx.release()
	v := sx.view.Load()
	usePacked, err := usePackedLayout(v, c)
	if err != nil {
		return nil, err
	}
	if err := c.cancel.Check(); err != nil {
		return nil, err // already expired/canceled on arrival
	}
	if err := sx.prepare(); err != nil {
		return nil, err
	}
	owned := false
	if ec == nil {
		ec = core.AcquireExec()
		owned = true
	}
	qs := ec.Points(len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	opt := c.coreOptions()
	opt.Cost = tk
	opt.Exec = ec
	workers := c.shards
	if workers == 0 {
		workers = defaultWorkers
	}
	if c.probe != nil {
		c.probe.packed = usePacked
		c.probe.overlay = v.ov != nil
	}
	var gs []core.GroupNeighbor
	if v.ov == nil {
		// No overlay writes: exactly the old scatter-gather, bit for bit.
		gs, err = v.set.Search(qs, opt, usePacked, workers, kern)
	} else {
		gs, err = shardedOverlayQuery(v, qs, opt, usePacked, workers, kern, c.k)
	}
	if owned {
		ec.Release()
	}
	if err != nil {
		return nil, err
	}
	return toResults(gs), nil
}

// shardedOverlayQuery answers a query on a mutated view: the base
// scatter-gather (tombstoned hits vetoed in every shard), the delta tree
// and the pending tail all share one tightening bound and one cost
// tracker, and a final k-way merge reassembles the exact answer — the
// same discipline as the plain index's overlayQuery.
func shardedOverlayQuery(v *shardedView, qs []geom.Point, opt core.Options, usePacked bool, workers int, kern shard.Kernel, k int) ([]core.GroupNeighbor, error) {
	ov := v.ov
	shared := core.NewSharedBound()
	lists := make([][]core.GroupNeighbor, 0, 3)
	// The base scatter records its own per-shard "scatter" and "merge"
	// stages inside Search; the overlay sources and final merge are timed
	// here, sequentially.
	timed := opt.Stages != nil
	var start time.Time
	if timed {
		start = time.Now()
	}
	mark := func(name string) {
		if timed {
			now := time.Now()
			opt.Stages.Record(name, -1, now.Sub(start))
			start = now
		}
	}

	bopt := opt
	bopt.Shared = shared
	if ov.tombs.Total() > 0 {
		bopt.Reject = ov.tombs.Rejects
	}
	gs, err := v.set.Search(qs, bopt, usePacked, workers, kern)
	if err != nil {
		return nil, err
	}
	lists = append(lists, gs)
	mark("base")

	if ov.delta != nil {
		dopt := opt
		dopt.Shared = shared
		dopt.Packed = nil
		if usePacked {
			dopt.Packed = ov.deltaP
		}
		gs, err := kern(ov.delta, qs, dopt)
		if err != nil {
			return nil, err
		}
		lists = append(lists, gs)
		mark("delta")
	}

	if pend := ov.pts[ov.folded:]; len(pend) > 0 {
		sopt := opt
		sopt.Shared = shared
		sopt.Packed = nil
		gs, err := core.ScanPoints(pend, ov.ids[ov.folded:], qs, sopt)
		if err != nil {
			return nil, err
		}
		lists = append(lists, gs)
		mark("pending")
	}
	merged := core.MergeNeighbors(k, lists)
	mark("overlay-merge")
	return merged, nil
}

// GroupNNIterator starts an incremental GNN scan over all shards: the
// per-shard incremental MBM streams merge lazily into one globally
// ascending stream, advancing a shard only when its lower bound is the
// smallest. Results and ordering are identical to Index.GroupNNIterator
// over the same points; its cost is the exact sum of per-shard accesses.
// On a mutated index the overlay's delta tree and pending tail join the
// merge as additional streams.
func (sx *ShardedIndex) GroupNNIterator(query []Point, opts ...QueryOption) (*Iterator, error) {
	c := buildConfig(opts)
	if err := sx.acquire(); err != nil {
		return nil, err
	}
	v := sx.view.Load()
	usePacked, err := usePackedLayout(v, queryConfig{algo: AlgoMBM, layout: c.layout, region: c.region})
	if err != nil {
		sx.release()
		return nil, err
	}
	if err := sx.prepare(); err != nil {
		sx.release()
		return nil, err
	}
	qs := make([]geom.Point, len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	out := &Iterator{}
	opt := c.coreOptions()
	opt.Cost = &out.tk
	if v.ov == nil {
		it, err := v.set.NewIterator(qs, opt, usePacked)
		if err != nil {
			sx.release()
			return nil, err
		}
		out.it = it
	} else {
		it, err := shardedOverlayIterator(v, qs, opt, usePacked)
		if err != nil {
			sx.release()
			return nil, err
		}
		out.it = it
	}
	out.done = sx.release
	return out, nil
}

// shardedOverlayIterator merges the base set's lazy shard merge with the
// overlay sources, mirroring the plain index's overlayIterator.
func shardedOverlayIterator(v *shardedView, qs []geom.Point, opt core.Options, usePacked bool) (*shard.Iterator, error) {
	ov := v.ov
	streams := make([]core.Stream, 0, 3)
	fail := func(err error) (*shard.Iterator, error) {
		for _, s := range streams {
			s.Close()
		}
		return nil, err
	}

	bopt := opt
	if ov.tombs.Total() > 0 {
		bopt.Reject = ov.tombs.Rejects
	}
	bit, err := v.set.NewIterator(qs, bopt, usePacked)
	if err != nil {
		return fail(err)
	}
	streams = append(streams, bit)

	if ov.delta != nil {
		dopt := opt
		dopt.Packed = nil
		if usePacked {
			dopt.Packed = ov.deltaP
		}
		dit, err := core.NewGNNIterator(ov.delta, qs, dopt)
		if err != nil {
			return fail(err)
		}
		streams = append(streams, dit)
	}

	if pend := ov.pts[ov.folded:]; len(pend) > 0 {
		list, err := core.ScanAll(pend, ov.ids[ov.folded:], qs, opt)
		if err != nil {
			return fail(err)
		}
		streams = append(streams, core.NewListStream(list))
	}
	return shard.NewMergedIterator(streams), nil
}

// Stats reports the sharded index's shape. A ShardedIndex always serves
// from its packed shards, so Packed is always true; Height is the
// maximum shard height and Nodes/ArenaBytes sum over the shards.
func (sx *ShardedIndex) Stats() Stats {
	v := sx.view.Load()
	s := Stats{
		Points: sx.Len(),
		Dim:    sx.Dim(),
		Packed: true,
		Shards: sx.NumShards(),
	}
	for i := 0; i < v.set.NumShards(); i++ {
		p := v.set.Shard(i).Packed
		s.Nodes += p.Nodes()
		s.ArenaBytes += p.ArenaBytes()
		if h := p.Height(); h > s.Height {
			s.Height = h
		}
	}
	if v.ov != nil {
		s.Delta = len(v.ov.pts)
		s.Tombstones = v.ov.tombs.Total()
	}
	s.compactStats(sx.compactGen.Load(), sx.compactNS.Load(), sx.compactErr.Load())
	return s
}

// StartCompactor starts the background compactor; the sharded twin of
// Index.StartCompactor. A stale temp file from a crashed previous
// rotation at cfg.Path is removed.
func (sx *ShardedIndex) StartCompactor(cfg CompactorConfig) error {
	cfg = cfg.withDefaults()
	sx.mu.Lock()
	defer sx.mu.Unlock()
	if sx.closed.Load() {
		return ErrSnapshotClosed
	}
	if sx.comp != nil {
		return ErrCompactorRunning
	}
	sx.persist = cfg.Path
	if cfg.Path != "" {
		os.Remove(snapshot.TempPath(cfg.Path))
	}
	c := newCompactor(cfg, func() error { return sx.compactOnce() },
		func() int { return sx.view.Load().overlaySize() })
	sx.comp = c
	go c.loop()
	return nil
}

// StopCompactor stops the background compactor, waiting for an in-flight
// compaction to finish or abort cleanly. Safe to call when none runs.
// Close calls it automatically.
func (sx *ShardedIndex) StopCompactor() {
	sx.mu.Lock()
	c := sx.comp
	sx.comp = nil
	sx.mu.Unlock()
	if c != nil {
		c.halt()
	}
}

// kickCompactor nudges the background loop when a write pushes the
// overlay past the threshold. Called under mu.
func (sx *ShardedIndex) kickCompactor(nv *shardedView) {
	if sx.comp != nil && nv.overlaySize() >= sx.comp.threshold {
		select {
		case sx.comp.kick <- struct{}{}:
		default:
		}
	}
}

// Compact synchronously re-partitions base plus overlay into a fresh
// shard set (same shard count) and swaps it in under live readers; the
// sharded twin of Index.Compact, with the same rotation semantics when a
// persist path is configured. The old set's resident workers are stopped
// after the swap — in-flight queries on it finish on pooled workers.
func (sx *ShardedIndex) Compact() error {
	return sx.compactOnce()
}

func (sx *ShardedIndex) compactOnce() (err error) {
	sx.compactMu.Lock()
	defer sx.compactMu.Unlock()

	// Hold a lifecycle reference for the whole cycle so Close's drain
	// waits for it (the rebuild walks the shard trees, which on a mapped
	// index read the mapping Close would unmap).
	if err := sx.acquire(); err != nil {
		return err
	}
	defer sx.release()

	sx.mu.Lock()
	v := sx.view.Load()
	path := sx.persist
	sx.mu.Unlock()
	if v.ov == nil {
		return nil // nothing to fold
	}

	start := time.Now()
	defer func() {
		sx.compactNS.Store(int64(time.Since(start)))
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		sx.compactErr.Store(&msg)
	}()

	// Re-partition off the write lock: writers and readers proceed
	// against the captured view while this runs.
	pts, ids := materializeLive(v.set, v.ov)
	nset, err := shard.Build(sx.rcfg, pts, ids, sx.shards)
	if err != nil {
		return fmt.Errorf("gnn: compact: %w", err)
	}

	var persistErr error
	if path != "" {
		persistErr = persistSharded(path, nset)
	}

	sx.mu.Lock()
	defer sx.mu.Unlock()
	if sx.closed.Load() {
		nset.Close()
		return ErrSnapshotClosed
	}
	// Replay the mutations that landed while the rebuild ran onto the
	// fresh set; see Index.compactOnce for the replay argument.
	tail := sx.log[v.seq:]
	nv := &shardedView{set: nset}
	for _, m := range tail {
		if m.Del {
			if nv2, ok := sx.applyDelete(nv, m.P, m.ID); ok {
				nv = nv2
			}
		} else {
			if nv2, aerr := sx.applyInsert(nv, m.P, m.ID); aerr == nil {
				nv = nv2
			}
		}
	}
	nv.seq = uint64(len(tail))
	sx.log = append([]overlay.Mutation(nil), tail...)
	sx.view.Store(nv)
	sx.compactGen.Add(1)
	// Stop the replaced set's resident workers deterministically:
	// in-flight queries holding the old view finish on pooled workers
	// (shard.Set.Close is drain-safe), and the arenas themselves stay
	// reachable until those views are dropped.
	v.set.Close()
	return persistErr
}

// persistSharded rotates a snapshot of the shard set into path
// crash-safely, with the same verify-before-rename discipline as
// persistPacked.
func persistSharded(path string, set *shard.Set) error {
	m, trees := set.Snapshot()
	return snapshot.AtomicWriteFile(path, func(w io.Writer) error {
		return snapshot.Write(w, m, trees)
	}, verifySnapshotFile)
}
