// Golden-trace regression test: the node-access counts of the fixed seed
// workloads below are locked in, so a change that silently regresses
// pruning (looser bounds, reordered candidates, a broken heuristic) fails
// loudly instead of shipping as a quiet slowdown. The counts are exact,
// not thresholds: every traversal in this codebase is deterministic for a
// fixed dataset and query list, and the packed/dynamic layouts are
// bit-equivalent, so both layouts must land on the same number.
//
// If an intentional pruning improvement changes a number, update the
// table — in its own commit, with the new value justified.
package gnn_test

import (
	"math/rand"
	"testing"

	"gnn"
)

// goldenNA is the locked-in total of physical node accesses (the paper's
// NA metric) summed over the 40 queries of the fixed workload.
var goldenNA = map[string]int64{
	"MBM-BF/sum": 281,
	"MBM-DF/sum": 309,
	"MQM/sum":    7085,
	"SPM-BF/sum": 504,
	"SPM-DF/sum": 534,
	"MBM-BF/max": 251,
	"MBM-DF/max": 283,
	// The dedicated MEB kernel (maxmeb.go) is the default MAX path; the
	// -generic cells lock the old per-member pruning path (WithGenericMax)
	// so both stay regression-guarded independently. On this clustered
	// fixture only the sharded cell improves (the per-shard re-descents
	// give the ball bound more laterally-wide nodes to kill); the uniform
	// 100k benchmark (BENCH_max.json) shows the plain-index gap.
	"MBM-BF/max-generic":      251,
	"MBM-DF/max-generic":      283,
	"sharded-MBM/max-generic": 571,
	"MQM/max":                 9612,
	"sharded-MBM/sum":         583,
	"sharded-MBM/max":         549,
	"sharded-MQM/sum":         13568,
	"iterator-k8/sum":         281,
	"sharded-iter/sum":        432,
}

// goldenFixture builds the fixed workload: clustered data and spatially
// concentrated query groups from a pinned seed.
func goldenFixture(t *testing.T) (*gnn.Index, *gnn.ShardedIndex, [][]gnn.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(123))
	pts := clusterPoints(rng, 3000, 1000)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]gnn.Point, 40)
	for i := range queries {
		queries[i] = queryGroup(rng, []int{1, 4, 16, 64}[i%4], 1000)
	}
	return ix, sx, queries
}

func TestGoldenNodeAccesses(t *testing.T) {
	ix, sx, queries := goldenFixture(t)

	type cell struct {
		name string
		run  func(qs []gnn.Point, layout gnn.Layout) (gnn.Cost, error)
	}
	q := func(ix *gnn.Index, opts ...gnn.QueryOption) func([]gnn.Point, gnn.Layout) (gnn.Cost, error) {
		return func(qs []gnn.Point, layout gnn.Layout) (gnn.Cost, error) {
			_, c, err := ix.GroupNNWithCost(qs, append(opts, gnn.WithK(8), gnn.WithLayout(layout))...)
			return c, err
		}
	}
	sq := func(opts ...gnn.QueryOption) func([]gnn.Point, gnn.Layout) (gnn.Cost, error) {
		return func(qs []gnn.Point, layout gnn.Layout) (gnn.Cost, error) {
			// WithShards(1): the sequential scatter is the deterministic
			// execution (the bound cascades shard to shard in index order);
			// concurrent scatter has timing-dependent NA by design.
			_, c, err := sx.GroupNNWithCost(qs,
				append(opts, gnn.WithK(8), gnn.WithLayout(layout), gnn.WithShards(1))...)
			return c, err
		}
	}
	cells := []cell{
		{"MBM-BF/sum", q(ix, gnn.WithAlgorithm(gnn.AlgoMBM))},
		{"MBM-DF/sum", q(ix, gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst())},
		{"MQM/sum", q(ix, gnn.WithAlgorithm(gnn.AlgoMQM))},
		{"SPM-BF/sum", q(ix, gnn.WithAlgorithm(gnn.AlgoSPM))},
		{"SPM-DF/sum", q(ix, gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithDepthFirst())},
		{"MBM-BF/max", q(ix, gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist))},
		{"MBM-DF/max", q(ix, gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst(), gnn.WithAggregate(gnn.MaxDist))},
		{"MBM-BF/max-generic", q(ix, gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist), gnn.WithGenericMax())},
		{"MBM-DF/max-generic", q(ix, gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst(), gnn.WithAggregate(gnn.MaxDist), gnn.WithGenericMax())},
		{"sharded-MBM/max-generic", sq(gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist), gnn.WithGenericMax())},
		{"MQM/max", q(ix, gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithAggregate(gnn.MaxDist))},
		{"sharded-MBM/sum", sq(gnn.WithAlgorithm(gnn.AlgoMBM))},
		{"sharded-MBM/max", sq(gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist))},
		{"sharded-MQM/sum", sq(gnn.WithAlgorithm(gnn.AlgoMQM))},
		{"iterator-k8/sum", func(qs []gnn.Point, layout gnn.Layout) (gnn.Cost, error) {
			it, err := ix.GroupNNIterator(qs, gnn.WithLayout(layout))
			if err != nil {
				return gnn.Cost{}, err
			}
			defer it.Close()
			for i := 0; i < 8; i++ {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			return it.Cost(), nil
		}},
		{"sharded-iter/sum", func(qs []gnn.Point, layout gnn.Layout) (gnn.Cost, error) {
			it, err := sx.GroupNNIterator(qs, gnn.WithLayout(layout))
			if err != nil {
				return gnn.Cost{}, err
			}
			defer it.Close()
			for i := 0; i < 8; i++ {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			return it.Cost(), nil
		}},
	}

	for _, c := range cells {
		var perLayout [2]int64
		for li, layout := range []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked} {
			var total int64
			for _, qs := range queries {
				cost, err := c.run(qs, layout)
				if err != nil {
					t.Fatalf("%s (%v): %v", c.name, layout, err)
				}
				total += cost.NodeAccesses
			}
			perLayout[li] = total
		}
		if perLayout[0] != perLayout[1] {
			t.Errorf("%s: NA diverged between layouts: dynamic %d, packed %d",
				c.name, perLayout[0], perLayout[1])
			continue
		}
		want, ok := goldenNA[c.name]
		if !ok {
			t.Errorf("%s: no golden value; measured %d", c.name, perLayout[0])
			continue
		}
		if perLayout[0] != want {
			t.Errorf("%s: node accesses changed: got %d, golden %d — a pruning regression "+
				"(or an intentional change that must update the golden table)",
				c.name, perLayout[0], want)
		}
	}
}
