// Benchmarks: one testing.B entry per paper figure (5.1-5.7) and per
// ablation (A1-A3). Each benchmark runs the figure's workload at a reduced
// dataset scale (so `go test -bench=.` finishes in minutes) and reports
// the paper's metrics as custom units:
//
//	na/query — average R-tree node accesses (plus Q page reads for the
//	           disk-resident figures)
//	ns/op    — wall time per query (single-threaded; ≈ the paper's CPU)
//
// The full-scale sweeps with the paper's exact parameters are produced by
// `go run ./cmd/gnnbench -all`.
package gnn_test

import (
	"sync"
	"testing"

	"gnn/internal/core"
	"gnn/internal/dataset"
	"gnn/internal/experiments"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/workload"
)

// benchScale shrinks PP to ~2.4k and TS to ~19.5k points.
const benchScale = 0.1

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Config{
			Scale:         benchScale,
			Queries:       20,
			Seed:          1,
			GCPPairBudget: 2_000_000,
		})
	})
	return benchEnv
}

func benchTree(b *testing.B, ds string) *rtree.Tree {
	b.Helper()
	t, err := env().Tree(ds)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func benchQueries(b *testing.B, n int, m float64) []workload.Query {
	b.Helper()
	qs, err := workload.Generate(workload.Spec{
		N: n, AreaFraction: m, Queries: 20,
		Workspace: dataset.Workspace(), Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return qs
}

type benchAlgo struct {
	name string
	run  func(*rtree.Tree, []geom.Point, core.Options) ([]core.GroupNeighbor, error)
}

func memBenchAlgos() []benchAlgo {
	return []benchAlgo{
		{"MQM", core.MQM},
		{"SPM", core.SPM},
		{"MBM", core.MBM},
	}
}

// benchMemoryCell measures one (algorithm, workload) cell: every b.N
// iteration answers the whole 10-query workload once, with a cold buffer
// per query (queries are independent; the LRU buffer's documented role is
// within one MQM execution).
func benchMemoryCell(b *testing.B, ds string, a benchAlgo, n int, m float64, k int) {
	t := benchTree(b, ds)
	queries := benchQueries(b, n, m)[:10]
	opt := core.Options{K: k}
	var physical int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			t.Accountant().ResetAll()
			if _, err := a.run(t, q.Points, opt); err != nil {
				b.Fatal(err)
			}
			physical += t.Accountant().Logical()
		}
	}
	b.StopTimer()
	totalQueries := int64(b.N) * int64(len(queries))
	b.ReportMetric(float64(physical)/float64(totalQueries), "na/query")
	// ns/op normalised to a single query, not a whole workload.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalQueries), "ns/query")
}

// --- Figure 5.1: cost vs n (M = 8%, k = 8) ---
//
// The bench sweep stops at n = 256: MQM is quadratic in n (the finding the
// figure exists to show), and n = 1024 alone would dominate the whole
// bench run. gnnbench covers the full range.

func BenchmarkFig51(b *testing.B) {
	for _, ds := range []string{"PP", "TS"} {
		for _, n := range []int{4, 64, 256} {
			for _, a := range memBenchAlgos() {
				b.Run(ds+"/n="+itoa(n)+"/"+a.name, func(b *testing.B) {
					benchMemoryCell(b, ds, a, n, 0.08, 8)
				})
			}
		}
	}
}

// --- Figure 5.2: cost vs M (n = 64, k = 8) ---

func BenchmarkFig52(b *testing.B) {
	for _, ds := range []string{"PP", "TS"} {
		for _, m := range []float64{0.02, 0.32} {
			for _, a := range memBenchAlgos() {
				b.Run(ds+"/M="+pct(m)+"/"+a.name, func(b *testing.B) {
					benchMemoryCell(b, ds, a, 64, m, 8)
				})
			}
		}
	}
}

// --- Figure 5.3: cost vs k (n = 64, M = 8%) ---

func BenchmarkFig53(b *testing.B) {
	for _, ds := range []string{"PP", "TS"} {
		for _, k := range []int{1, 32} {
			for _, a := range memBenchAlgos() {
				b.Run(ds+"/k="+itoa(k)+"/"+a.name, func(b *testing.B) {
					benchMemoryCell(b, ds, a, 64, 0.08, k)
				})
			}
		}
	}
}

// --- Figures 5.4-5.7: disk-resident Q ---

// benchDiskCell measures one disk-resident cell. Each iteration answers
// the single whole-dataset query once with fresh counters.
func benchDiskCell(b *testing.B, dataP, dataQ string, area float64, overlapMode bool, algo string) {
	e := env()
	tp := benchTree(b, dataP)
	qd, err := e.Dataset(dataQ)
	if err != nil {
		b.Fatal(err)
	}
	ws := dataset.Workspace()
	var target geom.Rect
	if overlapMode {
		target, err = workload.OverlapRect(ws, area)
	} else {
		target, err = workload.CenteredRect(ws, area)
	}
	if err != nil {
		b.Fatal(err)
	}
	qpts := qd.ScaleTo(target, "Q").Points
	blockPts := int(float64(core.DefaultBlockPoints) * benchScale)

	var totalNA int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		acct := pagestore.NewAccountant(512)
		tp.Accountant().ResetAll()
		b.StartTimer()
		switch algo {
		case "GCP":
			tq, err := rtree.BulkLoadSTR(rtree.Config{
				MaxEntries: rtree.DefaultMaxEntries,
				Accountant: acct,
				FirstPage:  1 << 40,
			}, qpts, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.GCP(tp, tq, core.GCPOptions{
				Options: core.Options{K: 8}, PairBudget: e.Config().GCPPairBudget,
			}); err != nil && err != core.ErrBudgetExceeded {
				b.Fatal(err)
			}
		case "F-MQM", "F-MBM":
			qf, err := core.NewQueryFile(qpts, blockPts, acct, 1<<41)
			if err != nil {
				b.Fatal(err)
			}
			dopt := core.DiskOptions{Options: core.Options{K: 8}}
			if algo == "F-MQM" {
				_, err = core.FMQM(tp, qf, dopt)
			} else {
				_, err = core.FMBM(tp, qf, dopt)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		totalNA += tp.Accountant().Logical() + acct.Logical()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(totalNA)/float64(b.N), "na/query")
}

func BenchmarkFig54(b *testing.B) {
	for _, m := range []float64{0.02, 0.32} {
		for _, algo := range []string{"GCP", "F-MQM", "F-MBM"} {
			b.Run("M="+pct(m)+"/"+algo, func(b *testing.B) {
				benchDiskCell(b, "TS", "PP", m, false, algo)
			})
		}
	}
}

func BenchmarkFig55(b *testing.B) {
	for _, m := range []float64{0.02, 0.32} {
		for _, algo := range []string{"F-MQM", "F-MBM"} {
			b.Run("M="+pct(m)+"/"+algo, func(b *testing.B) {
				benchDiskCell(b, "PP", "TS", m, false, algo)
			})
		}
	}
}

func BenchmarkFig56(b *testing.B) {
	for _, ov := range []float64{0, 1} {
		for _, algo := range []string{"GCP", "F-MQM", "F-MBM"} {
			b.Run("overlap="+pct(ov)+"/"+algo, func(b *testing.B) {
				benchDiskCell(b, "TS", "PP", ov, true, algo)
			})
		}
	}
}

func BenchmarkFig57(b *testing.B) {
	for _, ov := range []float64{0, 1} {
		for _, algo := range []string{"F-MQM", "F-MBM"} {
			b.Run("overlap="+pct(ov)+"/"+algo, func(b *testing.B) {
				benchDiskCell(b, "PP", "TS", ov, true, algo)
			})
		}
	}
}

// --- Ablations ---

// BenchmarkAblationH2Only: MBM with heuristic 2 only (§5.1 footnote 3).
func BenchmarkAblationH2Only(b *testing.B) {
	h2only := benchAlgo{"MBM-H2only", func(t *rtree.Tree, qs []geom.Point, opt core.Options) ([]core.GroupNeighbor, error) {
		opt.DisableHeuristic3 = true
		return core.MBM(t, qs, opt)
	}}
	for _, a := range append(memBenchAlgos()[1:], h2only) { // SPM, MBM, H2-only
		b.Run(a.name, func(b *testing.B) {
			benchMemoryCell(b, "PP", a, 64, 0.08, 8)
		})
	}
}

// BenchmarkAblationCentroid: SPM centroid solvers.
func BenchmarkAblationCentroid(b *testing.B) {
	mk := func(name string, m core.CentroidMethod) benchAlgo {
		return benchAlgo{name, func(t *rtree.Tree, qs []geom.Point, opt core.Options) ([]core.GroupNeighbor, error) {
			opt.Centroid = m
			return core.SPM(t, qs, opt)
		}}
	}
	for _, a := range []benchAlgo{
		mk("gradient", core.GradientDescent),
		mk("weiszfeld", core.Weiszfeld),
		mk("mean", core.ArithmeticMean),
	} {
		b.Run(a.name, func(b *testing.B) {
			benchMemoryCell(b, "PP", a, 64, 0.08, 8)
		})
	}
}

// BenchmarkAblationBuffer: MQM node accesses with and without an LRU
// buffer (§5.1 remark).
func BenchmarkAblationBuffer(b *testing.B) {
	for _, pages := range []int{0, 512} {
		b.Run("pages="+itoa(pages), func(b *testing.B) {
			d, err := env().Dataset("PP")
			if err != nil {
				b.Fatal(err)
			}
			acct := pagestore.NewAccountant(pages)
			t, err := rtree.BulkLoadSTR(rtree.Config{
				MaxEntries: rtree.DefaultMaxEntries, Accountant: acct,
			}, d.Points, nil)
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(b, 64, 0.08)
			acct.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := core.MQM(t, q.Points, core.Options{K: 8}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			totalQueries := int64(b.N) * int64(len(queries))
			b.ReportMetric(float64(acct.Physical())/float64(totalQueries), "na/query")
		})
	}
}

// --- micro-benchmarks of the building blocks ---

func BenchmarkIndexBuild(b *testing.B) {
	d, err := env().Dataset("PP")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("STR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtree.BulkLoadSTR(rtree.Config{}, d.Points, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hilbert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtree.BulkLoadHilbert(rtree.Config{}, d.Points, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, _ := rtree.New(rtree.Config{})
			for j, p := range d.Points {
				if err := t.Insert(p, int64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkPointNN(b *testing.B) {
	t := benchTree(b, "TS")
	q := geom.Point{5000, 5000}
	b.Run("BF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.NearestBF(q, 8)
		}
	})
	b.Run("DF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.NearestDF(q, 8)
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func pct(f float64) string {
	return itoa(int(f*100)) + "%"
}
