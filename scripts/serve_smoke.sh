#!/usr/bin/env bash
# Black-box smoke of a real gnnserve process: start → query → reject a
# corrupt reload → accept a good reload → SIGTERM drain → clean exit.
# The in-process fault suite (internal/server/faults_test.go) covers the
# hard races; this script pins what only a real process can — signal
# handling, the HTTP listener lifecycle, and exit status.
#
# Usage: scripts/serve_smoke.sh [port]   (default 18080)
set -euo pipefail

PORT="${1:-18080}"
URL="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
BIN="${DIR}/bin"
SRV_PID=""
mkdir -p "${BIN}"

cleanup() {
    [ -n "${SRV_PID}" ] && kill -9 "${SRV_PID}" 2>/dev/null || true
    rm -rf "${DIR}"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# http VERB URL [BODY] → status code on stdout, body in ${DIR}/resp.
http() {
    local verb="$1" url="$2" body="${3:-}"
    if [ -n "${body}" ]; then
        curl -s -o "${DIR}/resp" -w '%{http_code}' -X "${verb}" -d "${body}" "${url}"
    else
        curl -s -o "${DIR}/resp" -w '%{http_code}' -X "${verb}" "${url}"
    fi
}

echo "== build"
go build -o "${BIN}/gnnserve" ./cmd/gnnserve
go build -o "${BIN}/gnngen" ./cmd/gnngen

echo "== generate snapshots"
"${BIN}/gnngen" -dataset clustered -n 50000 -seed 1 -format snapshot -out "${DIR}/v1.snap"
"${BIN}/gnngen" -dataset clustered -n 60000 -seed 2 -format snapshot -out "${DIR}/v2.snap"
# A corrupt candidate: one bit flipped mid-payload.
python3 - "$DIR" <<'PY'
import sys, pathlib
d = pathlib.Path(sys.argv[1])
raw = bytearray((d / "v2.snap").read_bytes())
raw[len(raw) // 2] ^= 0x40
(d / "broken.snap").write_bytes(raw)
PY

echo "== start daemon"
"${BIN}/gnnserve" -snapshot "${DIR}/v1.snap" -addr "127.0.0.1:${PORT}" \
    -drain-timeout 5s >"${DIR}/serve.log" 2>&1 &
SRV_PID=$!
for i in $(seq 1 50); do
    [ "$(http GET "${URL}/readyz" || true)" = "200" ] && break
    kill -0 "${SRV_PID}" 2>/dev/null || { cat "${DIR}/serve.log" >&2; fail "daemon died on startup"; }
    sleep 0.1
done
[ "$(http GET "${URL}/readyz")" = "200" ] || fail "daemon never became ready"

echo "== query"
code=$(http POST "${URL}/v1/groupnn" '{"query":[[2000,3000],[2500,3500]],"k":3,"timeout_ms":1000}')
[ "${code}" = "200" ] || { cat "${DIR}/resp" >&2; fail "query: HTTP ${code}"; }
grep -q '"generation":1' "${DIR}/resp" || fail "query not answered by generation 1"

echo "== corrupt reload is rejected, daemon keeps serving"
code=$(http POST "${URL}/admin/reload" "{\"path\":\"${DIR}/broken.snap\"}")
[ "${code}" = "409" ] || fail "corrupt reload: want 409, got ${code}"
code=$(http POST "${URL}/v1/groupnn" '{"query":[[2000,3000]],"k":1}')
[ "${code}" = "200" ] || fail "query after rejected reload: HTTP ${code}"
grep -q '"generation":1' "${DIR}/resp" || fail "rejected reload changed the generation"

echo "== good reload swaps generations"
code=$(http POST "${URL}/admin/reload" "{\"path\":\"${DIR}/v2.snap\"}")
[ "${code}" = "200" ] || { cat "${DIR}/resp" >&2; fail "good reload: HTTP ${code}"; }
code=$(http POST "${URL}/v1/groupnn" '{"query":[[2000,3000]],"k":1}')
[ "${code}" = "200" ] || fail "query after reload: HTTP ${code}"
grep -q '"generation":2' "${DIR}/resp" || fail "query not answered by generation 2"

echo "== SIGHUP re-reads the live file in place"
kill -HUP "${SRV_PID}"
sleep 0.5
code=$(http GET "${URL}/v1/stats")
[ "${code}" = "200" ] || fail "stats after SIGHUP: HTTP ${code}"
grep -q '"ok":2' "${DIR}/resp" || fail "SIGHUP reload not counted (want reload.ok=2)"

echo "== SIGTERM drains and exits zero"
kill -TERM "${SRV_PID}"
for i in $(seq 1 50); do
    kill -0 "${SRV_PID}" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "${SRV_PID}" 2>/dev/null; then fail "daemon still alive after SIGTERM"; fi
wait "${SRV_PID}" && rc=0 || rc=$?
SRV_PID=""
[ "${rc}" = "0" ] || { cat "${DIR}/serve.log" >&2; fail "daemon exited ${rc}"; }
grep -q "draining" "${DIR}/serve.log" || fail "drain not logged"

echo "serve_smoke: PASS"
