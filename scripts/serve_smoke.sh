#!/usr/bin/env bash
# Black-box smoke of a real gnnserve process: start → query → reject a
# corrupt reload → accept a good reload → SIGTERM drain → clean exit,
# then a second run exercising the write path: inserts through
# /v1/insert, background compaction rotating the serving snapshot, and a
# SIGTERM that waits out the compactor (exit 0, no temp-file orphan, the
# rotated file serves the written points on restart).
# The in-process fault suite (internal/server/faults_test.go) covers the
# hard races; this script pins what only a real process can — signal
# handling, the HTTP listener lifecycle, and exit status.
#
# Usage: scripts/serve_smoke.sh [port]   (default 18080)
set -euo pipefail

PORT="${1:-18080}"
URL="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
BIN="${DIR}/bin"
SRV_PID=""
mkdir -p "${BIN}"

cleanup() {
    [ -n "${SRV_PID}" ] && kill -9 "${SRV_PID}" 2>/dev/null || true
    rm -rf "${DIR}"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# http VERB URL [BODY] → status code on stdout, body in ${DIR}/resp.
http() {
    local verb="$1" url="$2" body="${3:-}"
    if [ -n "${body}" ]; then
        curl -s -o "${DIR}/resp" -w '%{http_code}' -X "${verb}" -d "${body}" "${url}"
    else
        curl -s -o "${DIR}/resp" -w '%{http_code}' -X "${verb}" "${url}"
    fi
}

echo "== build"
go build -o "${BIN}/gnnserve" ./cmd/gnnserve
go build -o "${BIN}/gnngen" ./cmd/gnngen

echo "== generate snapshots"
"${BIN}/gnngen" -dataset clustered -n 50000 -seed 1 -format snapshot -out "${DIR}/v1.snap"
"${BIN}/gnngen" -dataset clustered -n 60000 -seed 2 -format snapshot -out "${DIR}/v2.snap"
# A corrupt candidate: one bit flipped mid-payload.
python3 - "$DIR" <<'PY'
import sys, pathlib
d = pathlib.Path(sys.argv[1])
raw = bytearray((d / "v2.snap").read_bytes())
raw[len(raw) // 2] ^= 0x40
(d / "broken.snap").write_bytes(raw)
PY

echo "== start daemon"
"${BIN}/gnnserve" -snapshot "${DIR}/v1.snap" -addr "127.0.0.1:${PORT}" \
    -drain-timeout 5s >"${DIR}/serve.log" 2>&1 &
SRV_PID=$!
for i in $(seq 1 50); do
    [ "$(http GET "${URL}/readyz" || true)" = "200" ] && break
    kill -0 "${SRV_PID}" 2>/dev/null || { cat "${DIR}/serve.log" >&2; fail "daemon died on startup"; }
    sleep 0.1
done
[ "$(http GET "${URL}/readyz")" = "200" ] || fail "daemon never became ready"

echo "== query"
code=$(http POST "${URL}/v1/groupnn" '{"query":[[2000,3000],[2500,3500]],"k":3,"timeout_ms":1000}')
[ "${code}" = "200" ] || { cat "${DIR}/resp" >&2; fail "query: HTTP ${code}"; }
grep -q '"generation":1' "${DIR}/resp" || fail "query not answered by generation 1"

echo "== corrupt reload is rejected, daemon keeps serving"
code=$(http POST "${URL}/admin/reload" "{\"path\":\"${DIR}/broken.snap\"}")
[ "${code}" = "409" ] || fail "corrupt reload: want 409, got ${code}"
code=$(http POST "${URL}/v1/groupnn" '{"query":[[2000,3000]],"k":1}')
[ "${code}" = "200" ] || fail "query after rejected reload: HTTP ${code}"
grep -q '"generation":1' "${DIR}/resp" || fail "rejected reload changed the generation"

echo "== good reload swaps generations"
code=$(http POST "${URL}/admin/reload" "{\"path\":\"${DIR}/v2.snap\"}")
[ "${code}" = "200" ] || { cat "${DIR}/resp" >&2; fail "good reload: HTTP ${code}"; }
code=$(http POST "${URL}/v1/groupnn" '{"query":[[2000,3000]],"k":1}')
[ "${code}" = "200" ] || fail "query after reload: HTTP ${code}"
grep -q '"generation":2' "${DIR}/resp" || fail "query not answered by generation 2"

echo "== SIGHUP re-reads the live file in place"
kill -HUP "${SRV_PID}"
sleep 0.5
code=$(http GET "${URL}/v1/stats")
[ "${code}" = "200" ] || fail "stats after SIGHUP: HTTP ${code}"
grep -q '"ok":2' "${DIR}/resp" || fail "SIGHUP reload not counted (want reload.ok=2)"

echo "== SIGTERM drains and exits zero"
kill -TERM "${SRV_PID}"
for i in $(seq 1 50); do
    kill -0 "${SRV_PID}" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "${SRV_PID}" 2>/dev/null; then fail "daemon still alive after SIGTERM"; fi
wait "${SRV_PID}" && rc=0 || rc=$?
SRV_PID=""
[ "${rc}" = "0" ] || { cat "${DIR}/serve.log" >&2; fail "daemon exited ${rc}"; }
grep -q "draining" "${DIR}/serve.log" || fail "drain not logged"

echo "== writes under traffic: compaction rotates the serving snapshot"
cp "${DIR}/v1.snap" "${DIR}/live.snap"
"${BIN}/gnnserve" -snapshot "${DIR}/live.snap" -addr "127.0.0.1:${PORT}" \
    -drain-timeout 5s -compact-threshold 8 -compact-interval 20ms \
    >"${DIR}/serve2.log" 2>&1 &
SRV_PID=$!
for i in $(seq 1 50); do
    [ "$(http GET "${URL}/readyz" || true)" = "200" ] && break
    kill -0 "${SRV_PID}" 2>/dev/null || { cat "${DIR}/serve2.log" >&2; fail "write daemon died on startup"; }
    sleep 0.1
done

for i in $(seq 1 24); do
    code=$(http POST "${URL}/v1/insert" "{\"point\":[${i}.5,${i}.5],\"id\":$((900000 + i))}")
    [ "${code}" = "200" ] || { cat "${DIR}/resp" >&2; fail "insert ${i}: HTTP ${code}"; }
done
code=$(http POST "${URL}/v1/delete" '{"point":[1.5,1.5],"id":900001}')
[ "${code}" = "200" ] || fail "delete: HTTP ${code}"
grep -q '"deleted":true' "${DIR}/resp" || fail "delete did not remove the inserted point"

echo "== wait for background compaction"
for i in $(seq 1 100); do
    code=$(http GET "${URL}/v1/stats")
    [ "${code}" = "200" ] || fail "stats: HTTP ${code}"
    if grep -q '"compaction_gen":0' "${DIR}/resp"; then sleep 0.1; else break; fi
done
grep -q '"compaction_gen":0' "${DIR}/resp" && fail "compaction never ran"
grep -q '"last_compaction_error"' "${DIR}/resp" && fail "compaction reported an error"

# The written point is still served after the fold.
code=$(http POST "${URL}/v1/groupnn" '{"query":[[24.5,24.5]],"k":1}')
[ "${code}" = "200" ] || fail "query after compaction: HTTP ${code}"
grep -q '"id":900024' "${DIR}/resp" || fail "compacted index lost an inserted point"

echo "== SIGTERM waits out the compactor: clean exit, no temp orphan"
kill -TERM "${SRV_PID}"
for i in $(seq 1 50); do
    kill -0 "${SRV_PID}" 2>/dev/null || break
    sleep 0.2
done
wait "${SRV_PID}" && rc=0 || rc=$?
SRV_PID=""
[ "${rc}" = "0" ] || { cat "${DIR}/serve2.log" >&2; fail "write daemon exited ${rc}"; }
[ -e "${DIR}/live.snap.tmp" ] && fail "rotation temp file orphaned after drain"

echo "== restart serves the rotated snapshot"
"${BIN}/gnnserve" -snapshot "${DIR}/live.snap" -addr "127.0.0.1:${PORT}" \
    -drain-timeout 5s >"${DIR}/serve3.log" 2>&1 &
SRV_PID=$!
for i in $(seq 1 50); do
    [ "$(http GET "${URL}/readyz" || true)" = "200" ] && break
    sleep 0.1
done
code=$(http POST "${URL}/v1/groupnn" '{"query":[[24.5,24.5]],"k":1}')
[ "${code}" = "200" ] || fail "query after restart: HTTP ${code}"
grep -q '"id":900024' "${DIR}/resp" || fail "rotated snapshot lost a written point across restart"
kill -TERM "${SRV_PID}"
for i in $(seq 1 50); do
    kill -0 "${SRV_PID}" 2>/dev/null || break
    sleep 0.2
done
wait "${SRV_PID}" && rc=0 || rc=$?
SRV_PID=""
[ "${rc}" = "0" ] || { cat "${DIR}/serve3.log" >&2; fail "restart daemon exited ${rc}"; }

echo "serve_smoke: PASS"
