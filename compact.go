// Background compaction: folding the write overlay back into a fresh
// packed base off the hot path, swapping it in atomically under live
// readers, and (optionally) rotating the on-disk snapshot crash-safely.

package gnn

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"gnn/internal/overlay"
	"gnn/internal/rtree"
	"gnn/internal/snapshot"
)

// ErrCompactorRunning reports a second StartCompactor without an
// intervening StopCompactor.
var ErrCompactorRunning = errors.New("gnn: compactor already running")

// ErrNotFrozen reports StartCompactor/Compact on a never-packed index:
// its mutations go straight into the R*-tree, so there is no overlay to
// compact. Call Pack once to freeze a base first.
var ErrNotFrozen = errors.New("gnn: index has no packed base; call Pack first")

// CompactorConfig tunes the background compactor.
type CompactorConfig struct {
	// Threshold is the overlay size (live overlay inserts + masked base
	// occurrences) at which a compaction cycle is triggered. Default
	// 1024. The trigger is backpressure-free: while a cycle runs, writes
	// keep landing in the overlay of the serving view and queries stay
	// correct — only bounded-slower, by the extra delta/pending sources —
	// and the next cycle folds whatever accumulated.
	Threshold int
	// Interval is the poll period backing the trigger (writes also kick
	// the compactor directly when they cross Threshold). Default 50ms.
	Interval time.Duration
	// Path, when non-empty, makes every successful compaction rotate a
	// snapshot of the new base into this file crash-safely (write temp →
	// fsync → verify → rename → fsync dir). A failed rotation never
	// replaces the previous file, is rolled back (temp removed), recorded
	// in Stats().LastCompactionError — and does not block the in-memory
	// swap: serving degrades to memory-only until a later cycle rotates
	// successfully.
	Path string
}

func (c CompactorConfig) withDefaults() CompactorConfig {
	if c.Threshold <= 0 {
		c.Threshold = 1024
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	return c
}

// compactor is the background loop shared by Index and ShardedIndex.
type compactor struct {
	threshold int
	interval  time.Duration
	stop      chan struct{}
	kick      chan struct{}
	done      chan struct{}
	run       func() error // one compaction cycle
	size      func() int   // current overlay size
}

func newCompactor(cfg CompactorConfig, run func() error, size func() int) *compactor {
	return &compactor{
		threshold: cfg.Threshold,
		interval:  cfg.Interval,
		stop:      make(chan struct{}),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		run:       run,
		size:      size,
	}
}

func (c *compactor) loop() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		case <-t.C:
		}
		if c.size() >= c.threshold {
			c.run() // errors are recorded in stats; the old view keeps serving
		}
	}
}

// halt stops the loop and waits for an in-flight cycle to finish (the
// cycle either completes its swap or aborts cleanly; a crash-safe
// rotation never leaves a temp file behind on failure).
func (c *compactor) halt() {
	close(c.stop)
	<-c.done
}

// StartCompactor starts the background compactor. The index must have a
// packed base (BuildIndex, OpenSnapshot*, or Pack on a NewIndex). A stale
// temp file from a crashed previous rotation at cfg.Path is removed.
func (ix *Index) StartCompactor(cfg CompactorConfig) error {
	cfg = cfg.withDefaults()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed.Load() {
		return ErrSnapshotClosed
	}
	if ix.comp != nil {
		return ErrCompactorRunning
	}
	if !ix.view.Load().frozen {
		return ErrNotFrozen
	}
	ix.persist = cfg.Path
	if cfg.Path != "" {
		os.Remove(snapshot.TempPath(cfg.Path))
	}
	c := newCompactor(cfg, func() error { return ix.compactOnce() },
		func() int { return ix.view.Load().overlaySize() })
	ix.comp = c
	go c.loop()
	return nil
}

// StopCompactor stops the background compactor, waiting for an in-flight
// compaction to finish or abort cleanly. Safe to call when none runs.
// Close calls it automatically.
func (ix *Index) StopCompactor() {
	ix.mu.Lock()
	c := ix.comp
	ix.comp = nil
	ix.mu.Unlock()
	if c != nil {
		c.halt()
	}
}

// kickCompactor nudges the background loop when a write pushes the
// overlay past the threshold. Called under mu.
func (ix *Index) kickCompactor(nv *viewState) {
	if ix.comp != nil && nv.overlaySize() >= ix.comp.threshold {
		select {
		case ix.comp.kick <- struct{}{}:
		default:
		}
	}
}

// Compact synchronously folds the overlay into a fresh packed base and
// swaps it in under live readers: the old base is never freed under a
// traversal (in-flight queries hold their view; a mapped arena is only
// unmapped by Close after the reference drain). When a rotation path is
// configured (StartCompactor), the new base is also rotated to disk
// crash-safely; a rotation failure is returned and recorded but the
// in-memory swap still happens. Compacting an index without overlay
// writes is a cheap no-op.
func (ix *Index) Compact() error {
	return ix.compactOnce()
}

func (ix *Index) compactOnce() (err error) {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()

	// Hold a lifecycle reference for the whole cycle so Close's drain
	// waits for it: the rebuild walks the base tree, which on a mapped
	// index reads the mapping Close would unmap.
	if err := ix.acquire(); err != nil {
		return err
	}
	defer ix.release()

	ix.mu.Lock()
	v := ix.view.Load()
	path := ix.persist
	ix.mu.Unlock()
	if !v.frozen {
		return ErrNotFrozen
	}
	if v.ov == nil {
		return nil // nothing to fold
	}

	start := time.Now()
	defer func() {
		ix.compactNS.Store(int64(time.Since(start)))
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		ix.compactErr.Store(&msg)
	}()

	// Build the replacement base off the write lock: writers and readers
	// proceed against the captured view while this runs.
	pts, ids := materializeLive(v.tree, v.ov)
	nt, err := rtree.BulkLoadSTR(ix.rcfg, pts, ids)
	if err != nil {
		return fmt.Errorf("gnn: compact: %w", err)
	}
	np := nt.Pack()

	var persistErr error
	if path != "" {
		persistErr = persistPacked(path, np)
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed.Load() {
		return ErrSnapshotClosed
	}
	// Replay the mutations that landed while the rebuild ran onto the
	// fresh base: the new base is exactly the live multiset at capture
	// time, so applying the log tail in order reproduces the current
	// state (tombstone multiplicities are recomputed against the new
	// base).
	tail := ix.log[v.seq:]
	nv := &viewState{tree: nt, packed: np, frozen: true}
	for _, m := range tail {
		if m.Del {
			if nv2, ok := ix.applyDelete(nv, m.P, m.ID); ok {
				nv = nv2
			}
		} else {
			if nv2, aerr := ix.applyInsert(nv, m.P, m.ID); aerr == nil {
				nv = nv2
			}
		}
	}
	nv.seq = uint64(len(tail))
	ix.log = append([]overlay.Mutation(nil), tail...)
	ix.view.Store(nv)
	ix.compactGen.Add(1)
	return persistErr
}

// persistPacked rotates a snapshot of the packed arena into path
// crash-safely, re-decoding the temp file with the strict decoder before
// the rename so a torn or corrupt write can never replace a good file.
func persistPacked(path string, p *rtree.Packed) error {
	return snapshot.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := p.WriteTo(w)
		return err
	}, verifySnapshotFile)
}

func verifySnapshotFile(tmp string) error {
	data, err := os.ReadFile(tmp)
	if err != nil {
		return err
	}
	_, _, err = snapshot.Decode(data)
	return err
}
